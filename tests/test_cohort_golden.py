"""Cohort golden suite: bit-identity of the multi-ligand engine.

The cohort engine's contract (``src/repro/docking/cohort.py``) is that
packing N ligands into one lock-step LGA changes *nothing* about any
individual ligand's trajectory: every score, genotype, eval count and
history entry is bit-identical (float hex, not tolerance) to the same
ligand docked alone with the same spawned seed.  These tests pin that
contract across:

* all five reduction backends on a mixed-size cohort (heterogeneous
  atom/torsion/pair counts exercise the padded struct-of-arrays path);
* duplicate-ligand cohorts (the identity-grouped / uniform fast paths,
  including the pair-free ligand whose intra tables are empty);
* both local-search methods, proportional selection, the eval-budget
  early exit and the ``max_gens=0`` degenerate config;
* RNG-stream isolation: dropping a member must not perturb the others;
* the per-ligand eval ledger, which feeds the throughput metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import DockingConfig
from repro.core.engine import DockingEngine, dock_cohort
from repro.search.cohort import CohortLGA
from repro.search.ga import GAConfig, GeneticAlgorithm, next_generation_batched
from repro.search.lga import LGAConfig
from repro.search.parallel import ParallelLGA
from repro.testcases import get_test_case

#: small-but-real config: two runs, a couple of generations of GA + LS
BASE = dict(pop_size=8, max_evals=300, max_gens=10, ls_iters=3, ls_rate=0.3)
#: heterogeneous cohort: 1u4d has no torsions (and no intra pairs),
#: 1xoz / 7cpa differ in atoms, torsions and pair counts
MIXED = ("1u4d", "1xoz", "7cpa")
BACKENDS = ("baseline", "warp-shuffle", "tc-fp16", "tcec-tf32", "exact")
N_RUNS = 2


def _seeds(n, entropy=99):
    return [np.random.SeedSequence(entropy=entropy, spawn_key=(i,))
            for i in range(n)]


def _assert_runs_equal(cohort_runs, single_runs, label):
    assert len(cohort_runs) == len(single_runs), label
    for r, (a, b) in enumerate(zip(cohort_runs, single_runs)):
        where = f"{label} run {r}"
        assert float(a.best_score).hex() == float(b.best_score).hex(), where
        assert a.best_genotype.tobytes() == b.best_genotype.tobytes(), where
        assert a.evals_used == b.evals_used, where
        assert a.generations == b.generations, where
        assert len(a.history) == len(b.history), where
        for (e1, v1, g1), (e2, v2, g2) in zip(a.history, b.history):
            assert e1 == e2 and float(v1).hex() == float(v2).hex() \
                and g1.tobytes() == g2.tobytes(), f"{where} history"


def _compare_cohort(names, config, backend="baseline", n_runs=N_RUNS):
    cases = [get_test_case(n) for n in names]
    seeds = _seeds(len(cases))
    cohort = CohortLGA([c.scoring() for c in cases], backend=backend,
                       config=config, seeds=seeds).run(n_runs)
    for i, case in enumerate(cases):
        single = ParallelLGA(case.scoring(), backend=backend, config=config,
                             seed=seeds[i]).run(n_runs)
        _assert_runs_equal(cohort[i], single, f"{names[i]}/{backend}")


# ----------------------------------------------------------------------
# cohort vs single bit-identity


@pytest.mark.parametrize("backend", BACKENDS)
def test_mixed_cohort_bit_identical_all_backends(backend):
    _compare_cohort(MIXED, LGAConfig(**BASE), backend)


def test_single_member_cohort():
    _compare_cohort(("7cpa",), LGAConfig(**BASE))


def test_duplicate_ligand_cohort_uniform_path():
    # all slots share one ligand object -> identity-grouped uniform fast
    # path (flat reshape views, representative coefficient rows)
    _compare_cohort(("7cpa", "7cpa", "7cpa"), LGAConfig(**BASE))


def test_duplicate_pair_free_cohort():
    # torsion-free ligand: empty intra pair tables (P == 0) through the
    # uniform fast path's explicit-row reshapes
    _compare_cohort(("1u4d", "1u4d"), LGAConfig(**BASE))


def test_mixed_cohort_with_duplicates():
    # duplicates inside a heterogeneous cohort: grouped contractions for
    # the repeated ligand, per-slot paths for the rest
    _compare_cohort(("7cpa", "1u4d", "7cpa"), LGAConfig(**BASE))


def test_solis_wets_cohort():
    _compare_cohort(MIXED, LGAConfig(**BASE, ls_method="sw"))


def test_proportional_selection_cohort():
    _compare_cohort(MIXED, LGAConfig(**BASE,
                                     ga=GAConfig(selection="proportional")))


def test_eval_budget_exit_cohort():
    # budget small enough that members trip the scored-final break in
    # different generations
    _compare_cohort(MIXED, LGAConfig(pop_size=8, max_evals=40, max_gens=50,
                                     ls_iters=3, ls_rate=0.3))


def test_max_gens_zero_cohort():
    _compare_cohort(MIXED, LGAConfig(pop_size=8, max_evals=300, max_gens=0,
                                     ls_iters=3, ls_rate=0.3))


# ----------------------------------------------------------------------
# RNG-stream isolation


def test_dropping_a_member_does_not_perturb_the_rest():
    cfg = LGAConfig(**BASE)
    cases = [get_test_case(n) for n in MIXED]
    seeds = _seeds(3)
    full = CohortLGA([c.scoring() for c in cases], config=cfg,
                     seeds=seeds).run(N_RUNS)
    dropped = CohortLGA([cases[0].scoring(), cases[2].scoring()], config=cfg,
                        seeds=[seeds[0], seeds[2]]).run(N_RUNS)
    _assert_runs_equal(full[0], dropped[0], "drop/slot0")
    _assert_runs_equal(full[2], dropped[1], "drop/slot2")


# ----------------------------------------------------------------------
# engine-level dock_cohort and the per-ligand eval ledger


def test_dock_cohort_matches_engine_dock():
    cfg = DockingConfig(lga=LGAConfig(**BASE))
    cases = [get_test_case(n) for n in MIXED]
    seeds = _seeds(3)
    results = dock_cohort(cases, cfg, n_runs=N_RUNS, seeds=seeds)
    for i, case in enumerate(cases):
        single = DockingEngine(case, cfg).dock(N_RUNS, seed=seeds[i])
        got, want = results[i], single
        assert got.case_name == want.case_name
        _assert_runs_equal(got.runs, want.runs, f"engine/{case.name}")
        # ledger: the per-ligand totals feed evals/s metrics and must
        # count exactly the single-path evaluations
        assert got.total_evals == want.total_evals
        assert got.total_evals == sum(r.evals_used for r in got.runs)
        assert got.generations == want.generations
        assert [float(v).hex() for v in got.final_rmsds] \
            == [float(v).hex() for v in want.final_rmsds]


def test_dock_cohort_seed_broadcast_and_validation():
    cfg = DockingConfig(lga=LGAConfig(**BASE))
    cases = [get_test_case("1u4d"), get_test_case("1xoz")]
    with pytest.raises(ValueError, match="seeds"):
        dock_cohort(cases, cfg, n_runs=1, seeds=_seeds(3))
    assert dock_cohort([], cfg) == []
    # one int seed broadcasts: every member sees the same stream a
    # single-ligand dock would
    results = dock_cohort(cases, cfg, n_runs=1, seeds=7)
    for case, got in zip(cases, results):
        want = DockingEngine(case, cfg).dock(1, seed=7)
        _assert_runs_equal(got.runs, want.runs, f"broadcast/{case.name}")


# ----------------------------------------------------------------------
# batched GA selection fallback


def _spawned_rngs(entropy, n=3):
    return [np.random.Generator(np.random.PCG64(s))
            for s in np.random.SeedSequence(entropy).spawn(n)]


def test_proportional_batched_matches_scalar():
    genes = np.random.default_rng(1).normal(size=(3, 10, 7))
    scores = np.random.default_rng(2).normal(size=(3, 10))
    scores[1] = 5.0     # degenerate: all-equal scores, zero total weight
    cfg = GAConfig(selection="proportional")
    gas_b = [GeneticAlgorithm(cfg, r) for r in _spawned_rngs(7)]
    gas_s = [GeneticAlgorithm(cfg, r) for r in _spawned_rngs(7)]
    out_b = next_generation_batched(gas_b, genes, scores)
    out_s = np.stack([gas_s[r].next_generation(genes[r], scores[r])
                      for r in range(3)])
    assert out_b.tobytes() == out_s.tobytes()


def test_tournament_batched_matches_scalar():
    genes = np.random.default_rng(1).normal(size=(3, 10, 7))
    scores = np.random.default_rng(2).normal(size=(3, 10))
    cfg = GAConfig()
    gas_b = [GeneticAlgorithm(cfg, r) for r in _spawned_rngs(8)]
    gas_s = [GeneticAlgorithm(cfg, r) for r in _spawned_rngs(8)]
    out_b = next_generation_batched(gas_b, genes, scores)
    out_s = np.stack([gas_s[r].next_generation(genes[r], scores[r])
                      for r in range(3)])
    assert out_b.tobytes() == out_s.tobytes()
