"""Smoke tests: the example scripts import and the cheap ones run."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    sys.modules[name] = mod
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize("name", [
    "quickstart", "virtual_screening", "tensor_core_reduction",
    "accuracy_study", "performance_model", "file_workflow",
    "block_size_study",
])
def test_example_imports(name):
    mod = _load(name)
    assert callable(mod.main)


def test_tensor_core_reduction_runs(capsys):
    _load("tensor_core_reduction").main()
    out = capsys.readouterr().out
    assert "Equation (2)" in out
    assert "tcec-tf32" in out
    assert "saturation" in out.lower()


def test_performance_model_runs(capsys):
    _load("performance_model").main()
    out = capsys.readouterr().out
    assert "Amdahl" in out
    assert "H100" in out and "B200" in out
