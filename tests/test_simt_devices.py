"""Tests for the device catalogue (paper Table 2)."""

import pytest

from repro.simt import A100, B200, H100, get_device, list_devices


class TestCatalogue:
    def test_lookup(self):
        assert get_device("a100") is A100
        assert get_device("H100") is H100
        assert get_device(B200) is B200

    def test_unknown_device(self):
        with pytest.raises(ValueError, match="unknown device"):
            get_device("V100")

    def test_paper_order(self):
        assert [d.name for d in list_devices()] == ["A100", "H100", "B200"]

    def test_table2_published_numbers(self):
        assert (A100.sm_count, A100.fp32_cores_per_sm) == (108, 64)
        assert (H100.sm_count, H100.fp32_cores_per_sm) == (114, 128)
        assert (B200.sm_count, B200.fp32_cores_per_sm) == (264, 128)
        assert A100.fp32_tflops == 19.49
        assert H100.tf32_tflops == 378.00
        assert B200.mem_bw_tb_s == 8.00
        for d in list_devices():
            assert d.tensor_cores_per_sm == 4


class TestDerived:
    def test_tensor_speedup_matches_section_511(self):
        """S = 8.0x (A100), 7.4x (H100), 15.0x (B200)."""
        assert A100.tensor_speedup == pytest.approx(8.0, abs=0.01)
        assert H100.tensor_speedup == pytest.approx(7.38, abs=0.01)
        assert B200.tensor_speedup == pytest.approx(15.0, abs=0.01)

    def test_clock_consistent_with_peak(self):
        for d in list_devices():
            peak = d.clock_hz * d.sm_count * d.fp32_cores_per_sm * 2 / 1e12
            assert peak == pytest.approx(d.fp32_tflops, rel=1e-6)

    def test_tc_throughput_consistent(self):
        for d in list_devices():
            total = d.tc_flops_per_cycle_sm * d.sm_count * d.clock_hz / 1e12
            assert total == pytest.approx(d.tf32_tflops, rel=1e-6)

    def test_barrier_grows_with_block_size(self):
        for d in list_devices():
            assert d.barrier_cycles(256) > d.barrier_cycles(64) > 0

    def test_resident_blocks_occupancy_limits(self):
        assert A100.resident_blocks(64) == 32          # cap at 32 blocks
        assert A100.resident_blocks(128) == 16         # 2048 threads / 128
        assert A100.resident_blocks(256) == 8
        assert A100.resident_blocks(4096) == 1         # floor at 1
