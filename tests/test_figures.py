"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.figures import ascii_bars, ascii_scatter_loglog


class TestScatter:
    def test_basic_render(self):
        pts = [("7cpa", 1000.0, 2000.0), ("3ce3", 500.0, 450.0)]
        out = ascii_scatter_loglog(pts, xlabel="ref", ylabel="tc",
                                   title="Fig")
        assert "Fig" in out
        assert "7=7cpa" in out
        assert "diagonal" in out
        assert out.count("|") >= 20          # plot rows

    def test_point_above_diagonal_lands_above(self):
        """A y >> x point must render above the diagonal line."""
        out = ascii_scatter_loglog([("aa", 10.0, 1000.0)], width=20,
                                   height=10)
        rows = [l[1:] for l in out.splitlines() if l.startswith("|")]
        a_row = next(i for i, r in enumerate(rows) if "a" in r)
        a_col = rows[a_row].index("a")
        diag_row = next(i for i, r in enumerate(rows)
                        if len(r) > a_col and r[a_col] == ".")
        assert a_row < diag_row              # smaller row index = higher

    def test_infinite_points_dropped(self):
        pts = [("aa", float("inf"), 10.0), ("bb", 10.0, 20.0)]
        out = ascii_scatter_loglog(pts)
        assert "b=bb" in out and "a=aa" not in out

    def test_no_points(self):
        out = ascii_scatter_loglog([("x", float("inf"), 1.0)], title="T")
        assert "(no finite points)" in out

    def test_collision_marker(self):
        pts = [("aa", 100.0, 100.0), ("bb", 100.0, 100.0)]
        out = ascii_scatter_loglog(pts, width=10, height=5)
        assert "*" in out


class TestBars:
    def test_render(self):
        out = ascii_bars([("A100", 1.14), ("H100", 1.68)], title="rel",
                         unit="x")
        assert "rel" in out
        assert "1.68x" in out
        # the larger value gets the longer bar
        lines = out.splitlines()
        assert lines[2].count("#") > lines[1].count("#")

    def test_empty(self):
        assert "(empty)" in ascii_bars([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars([("x", -1.0)])
