"""Shared fixtures: a small deterministic ligand/receptor and cached cases."""

import numpy as np
import pytest

from repro.docking import Ligand, Receptor, TorsionBond


@pytest.fixture(autouse=True)
def _obs_isolation():
    """The tracer is process-global: a test that configures it must not
    leak a live JSONL writer (often into a deleted tmp dir) into the
    next test."""
    yield
    from repro.obs import disable
    disable()


@pytest.fixture(scope="session")
def butane_like():
    """A 5-atom, 1-torsion ligand with simple geometry (fast unit tests)."""
    coords = np.array([
        [0.0, 0.0, 0.0],
        [1.5, 0.0, 0.0],
        [2.25, 1.3, 0.0],
        [3.75, 1.3, 0.0],
        [4.5, 2.6, 0.0],
    ])
    return Ligand(
        name="butane-like",
        atom_types=["C", "C", "C", "OA", "HD"],
        ref_coords=coords,
        charges=np.array([0.02, 0.01, 0.0, -0.3, 0.2]),
        bonds=[(0, 1), (1, 2), (2, 3), (3, 4)],
        torsions=[TorsionBond(atom_a=1, atom_b=2, moved=(3, 4))],
    )


@pytest.fixture(scope="session")
def small_receptor():
    """A handful of receptor atoms around the origin."""
    rng = np.random.default_rng(42)
    coords = rng.normal(scale=4.0, size=(12, 3)) + np.array([2.0, 1.0, 0.0])
    # push them at least 3.5 Å away from the origin region
    norms = np.linalg.norm(coords, axis=1, keepdims=True)
    coords = coords / np.maximum(norms, 1e-9) * np.maximum(norms, 5.0)
    return Receptor(
        name="mini-pocket",
        atom_types=["C", "OA", "N", "C", "HD", "C",
                    "C", "OA", "C", "N", "C", "C"],
        coords=coords,
        charges=rng.normal(0, 0.1, size=12),
    )


@pytest.fixture(scope="session")
def small_maps(butane_like, small_receptor):
    """Grid maps covering the small ligand's types."""
    return small_receptor.make_maps(
        sorted(set(butane_like.atom_types)),
        origin=np.array([-8.0, -8.0, -8.0]),
        shape=(33, 33, 33),
        spacing=0.5,
    )


@pytest.fixture(scope="session")
def case_7cpa():
    """The paper's reference medium-complexity case (cached per session)."""
    from repro.testcases import get_test_case
    return get_test_case("7cpa")


@pytest.fixture(scope="session")
def case_small():
    """The smallest case of the set (n_rot = 0)."""
    from repro.testcases import get_test_case
    return get_test_case("1u4d")
