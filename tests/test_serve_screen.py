"""Tests for VirtualScreen: manifests, resume, ranking, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import DockingConfig, DockingEngine
from repro.io import write_maps, write_pdbqt
from repro.search.lga import LGAConfig
from repro.serve import VirtualScreen, seed_from_spec, spawn_seed
from repro.testcases import get_test_case

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))


@pytest.fixture()
def ligand_library(case_small, tmp_path):
    """A receptor map set + 4 distinct ligand poses sharing it."""
    fld = write_maps(case_small.maps, tmp_path, stem="receptor")
    rng = np.random.default_rng(0)
    paths = []
    for i in range(4):
        path = tmp_path / f"lig{i}.pdbqt"
        jitter = rng.normal(0, 0.05, size=case_small.ligand.ref_coords.shape)
        write_pdbqt(case_small.ligand, path,
                    coords=case_small.ligand.ref_coords + jitter)
        paths.append(str(path))
    return fld, paths


class TestConstruction:
    def test_exactly_one_target_style(self):
        with pytest.raises(ValueError, match="exactly one"):
            VirtualScreen()
        with pytest.raises(ValueError, match="exactly one"):
            VirtualScreen(cases=["1u4d"], case="1u4d", ligands=["x"])

    def test_ligand_styles_need_ligands(self):
        with pytest.raises(ValueError, match="ligand file"):
            VirtualScreen(case="1u4d")

    def test_priorities_length_checked(self):
        with pytest.raises(ValueError, match="priorities"):
            VirtualScreen(cases=["1u4d", "1xoz"], priorities=[1])

    def test_jobs_are_content_addressed_and_seed_spawned(
            self, ligand_library):
        fld, ligs = ligand_library
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=11)
        jobs = screen.jobs()
        assert len({j.job_id for j in jobs}) == 4
        assert [j.seed for j in jobs] == [spawn_seed(11, i)
                                         for i in range(4)]
        assert all(j.spec["fld_sha256"] == jobs[0].spec["fld_sha256"]
                   for j in jobs)


class TestScreenRun:
    def test_ranking_matches_sequential_engine(self):
        """Acceptance: ranked manifest best scores == sequential dock."""
        names = ["1u4d", "1xoz", "1yv3", "1owe"]
        screen = VirtualScreen(cases=names, config=TINY, n_runs=2, seed=7)
        report = screen.run(workers=2)
        assert report.stats["jobs_failed"] == 0
        assert len(report.ranking) == 4
        expected = {}
        for i, name in enumerate(names):
            expected[name] = DockingEngine(get_test_case(name), TINY).dock(
                n_runs=2, seed=seed_from_spec(spawn_seed(7, i))).best_score
        got = {hit["label"]: hit["best_score"] for hit in report.ranking}
        assert got == expected
        scores = [hit["best_score"] for hit in report.ranking]
        assert scores == sorted(scores)

    def test_resume_does_zero_new_work(self, ligand_library, tmp_path):
        """Acceptance: a second --resume invocation re-docks nothing."""
        fld, ligs = ligand_library
        manifest = tmp_path / "manifest.json"
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)
        first = screen.run(workers=0, manifest=manifest)
        assert first.stats["jobs_completed"] == 4
        assert first.stats["cache"]["hits"] > 0   # shared receptor

        second = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)
        resumed = second.run(workers=0, manifest=manifest, resume=True)
        assert resumed.stats["jobs_completed"] == 0
        assert resumed.stats["jobs_cached"] == 4
        # same ranking, modulo ok -> cached status
        strip = [[{k: v for k, v in hit.items() if k != "status"}
                  for hit in rep.ranking] for rep in (first, resumed)]
        assert strip[0] == strip[1]

    def test_interrupted_screen_resumes_without_rerunning(
            self, ligand_library, tmp_path):
        """Kill after 2 of 4 jobs; resume runs exactly the missing 2."""
        fld, ligs = ligand_library
        manifest = tmp_path / "manifest.json"
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)

        class Interrupt(Exception):
            pass

        seen = []

        def die_after_two(result):
            seen.append(result.job_id)
            if len(seen) == 2:
                raise Interrupt()

        with pytest.raises(Interrupt):
            screen.run(workers=0, manifest=manifest, stream=die_after_two)
        # the manifest survived the crash atomically with 2 terminal jobs
        persisted = json.loads(manifest.read_text())
        assert len(persisted["jobs"]) == 2

        resumed = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                                n_runs=2, seed=3).run(
            workers=0, manifest=manifest, resume=True)
        assert resumed.stats["jobs_cached"] == 2
        assert resumed.stats["jobs_completed"] == 2
        assert len(resumed.ranking) == 4
        ran_ids = {r.job_id for r in resumed.results.values()
                   if r.status == "ok"}
        assert ran_ids.isdisjoint(seen)           # no job ran twice

    def test_duplicate_ligands_deduped(self, ligand_library, tmp_path):
        fld, ligs = ligand_library
        copy = tmp_path / "copy-of-lig0.pdbqt"
        copy.write_bytes((tmp_path / "lig0.pdbqt").read_bytes())
        screen = VirtualScreen(fld=fld, ligands=[ligs[0], str(copy)],
                               config=TINY, n_runs=2, seed=3)
        report = screen.run(workers=0)
        assert report.stats["queue"]["deduped"] == 1
        assert report.stats["jobs_total"] == 1

    def test_priorities_order_execution(self, ligand_library):
        fld, ligs = ligand_library
        order = []
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3,
                               priorities=[3, 2, 1, 0])
        screen.run(workers=0, stream=lambda r: order.append(r.label))
        assert order == ["lig3", "lig2", "lig1", "lig0"]

    def test_resume_requires_manifest(self):
        screen = VirtualScreen(cases=["1u4d"], config=TINY, n_runs=2)
        with pytest.raises(ValueError, match="manifest"):
            screen.run(workers=0, resume=True)


class TestTracedScreen:
    def test_traced_run_emits_valid_log_and_heartbeats(
            self, ligand_library, tmp_path):
        """Acceptance: a traced screen writes a schema-valid JSONL log
        covering every pipeline stage, and the manifest stats carry the
        workers' last heartbeats (liveness + metrics snapshots)."""
        from repro.obs import summarize_log, validate_log

        fld, ligs = ligand_library
        trace = tmp_path / "trace.jsonl"
        manifest = tmp_path / "manifest.json"
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)
        report = screen.run(workers=0, manifest=manifest, trace=trace)
        assert report.stats["jobs_failed"] == 0

        counts = validate_log(trace)          # raises SchemaError if bad
        assert counts["spans"] > 0 and counts["points"] > 0
        assert counts["sources"] == ["main"]  # inline run: one process

        summary = summarize_log(trace)
        for stage in ("screen.run", "job.execute", "engine.dock",
                      "lga.run", "adadelta.minimize"):
            assert summary["spans"][stage]["count"] >= 1, stage
        # one screen.run wrapping everything
        assert summary["spans"]["screen.run"]["count"] == 1
        assert summary["jobs"]["completed"] == 4

        # heartbeats surfaced in report stats AND the persisted manifest
        hb = report.stats["heartbeats"]
        assert hb and all("cache" in v and "metrics" in v
                          for v in hb.values())
        persisted = json.loads(manifest.read_text())
        assert persisted["stats"]["heartbeats"].keys() == hb.keys()

    def test_trace_spans_nest_under_screen_run(self, tmp_path):
        """Every span in the log must reach the screen.run root through
        parent_id links (one trace tree per process)."""
        from repro.obs.schema import read_log

        trace = tmp_path / "trace.jsonl"
        screen = VirtualScreen(cases=["1u4d"], config=TINY, n_runs=1,
                               seed=5)
        screen.run(workers=0, trace=trace)

        spans = {r["span_id"]: r for _, r in read_log(trace)
                 if r["type"] == "span"}
        roots = [s for s in spans.values() if s["parent_id"] is None]
        assert [s["name"] for s in roots] == ["screen.run"]
        for s in spans.values():
            hops = 0
            while s["parent_id"] is not None:
                s = spans[s["parent_id"]]
                hops += 1
                assert hops < 100
            assert s["name"] == "screen.run"

    def test_untraced_run_writes_no_log(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        screen = VirtualScreen(cases=["1u4d"], config=TINY, n_runs=1)
        screen.run(workers=0)
        assert not trace.exists()


class TestScreenCli:
    def test_end_to_end_with_resume(self, ligand_library, tmp_path,
                                    capsys):
        fld, ligs = ligand_library
        manifest = str(tmp_path / "m.json")
        argv = ["screen", "-ffile", str(fld), "-l", *ligs,
                "--workers", "0", "-nrun", "2", "--evals", "300",
                "--pop", "8", "--lsit", "5", "--tensor", "baseline",
                "--manifest", manifest]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "4 new, 0 cached" in out
        assert "Top hits" in out
        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 new, 4 cached" in out

    def test_target_style_required(self, capsys):
        assert main(["screen", "-l", "x.pdbqt"]) == 2
        assert main(["screen", "-case", "1u4d"]) == 2

    def test_screen_named_cases(self, capsys, tmp_path):
        rc = main(["screen", "--cases", "1u4d", "1xoz", "--workers", "0",
                   "-nrun", "1", "--evals", "200", "--pop", "8",
                   "--lsit", "4", "--tensor", "baseline",
                   "--manifest", str(tmp_path / "m.json")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Screening 2 ligands" in out


class TestScreenExitCodes:
    """CLI exit contract: 0 clean, 1 plain failures, 3 dead letters
    unless the operator accepts them with --allow-dead."""

    def _chaotic_main(self, monkeypatch, poison_case):
        """Route the screen CLI through a VirtualScreen that poisons
        one case, producing a dead-lettered job."""
        import repro.serve as serve_mod
        real = serve_mod.VirtualScreen

        def chaotic(*args, **kwargs):
            kwargs["chaos"] = {poison_case: {"poison_nonfinite": True}}
            return real(*args, **kwargs)

        monkeypatch.setattr(serve_mod, "VirtualScreen", chaotic)

    def _argv(self, tmp_path, *extra):
        return ["screen", "--cases", "1u4d", "1xoz", "--workers", "0",
                "-nrun", "1", "--evals", "200", "--pop", "8",
                "--lsit", "4", "--tensor", "baseline", "--retries", "0",
                "--manifest", str(tmp_path / "m.json"), *extra]

    def test_dead_letters_fail_with_exit_3(self, monkeypatch, tmp_path,
                                           capsys):
        self._chaotic_main(monkeypatch, "1u4d")
        assert main(self._argv(tmp_path)) == 3
        err = capsys.readouterr().err
        assert "dead-lettered" in err
        assert "--allow-dead" in err
        assert "--retry-dead" in err

    def test_allow_dead_accepts_partial_results(self, monkeypatch,
                                                tmp_path, capsys):
        self._chaotic_main(monkeypatch, "1u4d")
        assert main(self._argv(tmp_path, "--allow-dead")) == 0
        out = capsys.readouterr().out
        assert "accepted (--allow-dead)" in out

    def test_clean_screen_still_exits_zero(self, tmp_path, capsys):
        assert main(self._argv(tmp_path)) == 0
        capsys.readouterr()

    def test_heartbeat_flag_threads_through_to_pool(self, tmp_path,
                                                    capsys):
        """--heartbeat reaches the workers: the trace log's heartbeats
        carry the configured cadence."""
        from repro.obs.schema import read_log
        trace = tmp_path / "t.jsonl"
        rc = main(self._argv(tmp_path, "--heartbeat", "0.75",
                             "--trace", str(trace)))
        assert rc == 0
        capsys.readouterr()
        beats = [rec for _, rec in read_log(trace)
                 if rec.get("name") == "worker.heartbeat"]
        assert beats
        assert all(b["attrs"]["interval_s"] == 0.75 for b in beats)
