"""Tests for PDBQT/DLG file formats and the command-line interface."""

import numpy as np
import pytest

from repro import DockingConfig, DockingEngine
from repro.cli import build_parser, main
from repro.io import parse_dlg, read_pdbqt, write_dlg, write_pdbqt
from repro.search.lga import LGAConfig


class TestPdbqt:
    def test_round_trip_structure(self, case_7cpa, tmp_path):
        lig = case_7cpa.ligand
        path = tmp_path / "lig.pdbqt"
        write_pdbqt(lig, path)
        back = read_pdbqt(path)
        assert back.n_atoms == lig.n_atoms
        assert back.atom_types == lig.atom_types
        assert back.n_rot == lig.n_rot
        np.testing.assert_allclose(back.charges, lig.charges, atol=5e-4)
        # coordinates survive to PDB precision, re-centred
        np.testing.assert_allclose(back.ref_coords, lig.ref_coords,
                                   atol=2e-3)

    def test_torsion_tree_round_trip(self, case_7cpa, tmp_path):
        lig = case_7cpa.ligand
        path = tmp_path / "lig.pdbqt"
        write_pdbqt(lig, path)
        back = read_pdbqt(path)
        for a, b in zip(lig.torsions, back.torsions):
            assert (a.atom_a, a.atom_b) == (b.atom_a, b.atom_b)
            assert set(a.moved) == set(b.moved)

    def test_file_contains_pdbqt_markers(self, butane_like, tmp_path):
        path = tmp_path / "b.pdbqt"
        write_pdbqt(butane_like, path)
        text = path.read_text()
        assert "ROOT" in text and "ENDROOT" in text
        assert "BRANCH" in text and "TORSDOF 1" in text

    def test_pose_coords(self, butane_like, tmp_path):
        pose = butane_like.ref_coords + 5.0
        path = tmp_path / "pose.pdbqt"
        write_pdbqt(butane_like, path, coords=pose)
        assert "5.0" in path.read_text() or "4.9" in path.read_text()

    def test_wrong_coords_shape(self, butane_like, tmp_path):
        with pytest.raises(ValueError, match="coords"):
            write_pdbqt(butane_like, tmp_path / "x.pdbqt",
                        coords=np.zeros((2, 3)))


class TestDlg:
    def _result(self, case):
        cfg = DockingConfig(backend="baseline",
                            lga=LGAConfig(pop_size=8, max_evals=600,
                                          max_gens=10, ls_iters=8,
                                          ls_rate=0.25))
        return DockingEngine(case, cfg).dock(n_runs=2, seed=0)

    def test_write_and_grep_phrases(self, case_small, tmp_path):
        """The artifact-appendix grep targets must appear verbatim."""
        res = self._result(case_small)
        path = tmp_path / "out.dlg"
        write_dlg(res, path)
        text = path.read_text()
        assert "Run time" in text
        assert "Number of energy evaluations performed" in text

    def test_parse_round_trip(self, case_small, tmp_path):
        res = self._result(case_small)
        path = tmp_path / "out.dlg"
        write_dlg(res, path)
        parsed = parse_dlg(path)
        assert parsed["case"] == "1u4d"
        assert parsed["evals"] == res.total_evals
        assert parsed["runtime_s"] == pytest.approx(res.runtime_seconds,
                                                    abs=1e-3)
        assert len(parsed["runs"]) == 2
        assert parsed["best_score"] == pytest.approx(res.best_score,
                                                     abs=1e-3)


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["-case", "7cpa"])
        assert args.nrun == 20
        assert args.lsmet == "ad"
        assert args.tensor == "baseline"

    def test_missing_case_errors(self, capsys):
        assert main([]) == 2

    def test_end_to_end(self, tmp_path, capsys):
        rc = main(["-case", "1u4d", "-nrun", "2", "--evals", "600",
                   "--pop", "8", "--lsit", "8", "--tensor", "tcec-tf32",
                   "--device", "H100", "--nwi", "128",
                   "-resnam", str(tmp_path / "run")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Number of energy evaluations performed" in out
        assert "Run time" in out
        assert (tmp_path / "run.dlg").exists()
        parsed = parse_dlg(tmp_path / "run.dlg")
        assert parsed["backend"] == "tcec-tf32"

    def test_solis_wets_method(self, capsys):
        rc = main(["-case", "1u4d", "-nrun", "1", "--evals", "400",
                   "--pop", "8", "--lsit", "5", "-lsmet", "sw"])
        assert rc == 0


class TestCliExternalLigand:
    def test_lfile_docks_into_case_maps(self, case_small, tmp_path, capsys):
        from repro.io import write_pdbqt
        lig_path = tmp_path / "ext.pdbqt"
        write_pdbqt(case_small.ligand, lig_path)
        rc = main(["-case", "1u4d", "-lfile", str(lig_path), "-nrun", "1",
                   "--evals", "400", "--pop", "8", "--lsit", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "external ligand" in out

    def test_heuristics_flag_sets_budget(self, capsys):
        rc = main(["-case", "1u4d", "-nrun", "1", "--evals", "2500",
                   "--pop", "8", "--lsit", "5", "-H", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Heuristics (-H)" in out

    def test_autostop_flag(self, capsys):
        rc = main(["-case", "1u4d", "-nrun", "1", "--evals", "2000",
                   "--pop", "8", "--lsit", "5", "-A", "1"])
        assert rc == 0


class TestDlgClustering:
    def test_histogram_included_with_case(self, case_small, tmp_path):
        from repro import DockingConfig, DockingEngine
        cfg = DockingConfig(backend="baseline",
                            lga=LGAConfig(pop_size=8, max_evals=600,
                                          max_gens=10, ls_iters=8,
                                          ls_rate=0.25))
        res = DockingEngine(case_small, cfg).dock(n_runs=3, seed=4)
        path = tmp_path / "c.dlg"
        write_dlg(res, path, case=case_small)
        text = path.read_text()
        assert "CLUSTERING HISTOGRAM" in text
        # without the case no histogram appears
        path2 = tmp_path / "n.dlg"
        write_dlg(res, path2)
        assert "CLUSTERING HISTOGRAM" not in path2.read_text()
