"""Unit tests for reduced-precision format emulation."""

import numpy as np
import pytest

from repro.fpemu import (
    BF16,
    FP16,
    FP32,
    TF32,
    get_format,
    quantize,
    to_bf16,
    to_fp16,
    to_tf32,
)


class TestFormatMetadata:
    def test_lookup_by_name(self):
        assert get_format("tf32") is TF32
        assert get_format("FP16") is FP16
        assert get_format(BF16) is BF16

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown float format"):
            get_format("fp8")

    def test_machine_epsilon(self):
        assert TF32.machine_epsilon == 2.0 ** -11
        assert FP16.machine_epsilon == 2.0 ** -11
        assert BF16.machine_epsilon == 2.0 ** -8
        assert FP32.machine_epsilon == 2.0 ** -24

    def test_split_scale_matches_ootomo(self):
        # residual up-scaling by 2^(mantissa+1)
        assert TF32.split_scale == 2048.0
        assert FP16.split_scale == 2048.0

    def test_tf32_shares_fp32_exponent_range(self):
        assert TF32.exponent_bits == FP32.exponent_bits == 8
        assert TF32.max_value == FP32.max_value


class TestTF32:
    def test_exactly_representable_values_unchanged(self):
        # 10-bit mantissa lattice points
        vals = np.array([1.0, 1.5, 2.0, 0.25, -3.0, 1.0 + 2.0 ** -10],
                        dtype=np.float32)
        np.testing.assert_array_equal(to_tf32(vals), vals)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=10_000).astype(np.float32) * 1e3
        err = np.abs((to_tf32(x) - x) / x)
        assert np.max(err) <= 2.0 ** -11

    def test_rounds_to_nearest(self):
        # TF32 keeps 10 mantissa bits -> ULP near 1.0 is 2^-10, so
        # 1 + 2^-11 is exactly halfway to the next lattice point;
        # ties-away rounds up.
        x = np.float32(1.0) + np.float32(2.0 ** -11)
        assert to_tf32(x) == np.float32(1.0 + 2.0 ** -10)
        # below the midpoint -> rounds down
        y = np.float32(1.0) + np.float32(2.0 ** -12)
        assert to_tf32(y) == np.float32(1.0)

    def test_rz_mode_truncates(self):
        x = np.float32(1.0) + np.float32(2.0 ** -11)
        assert to_tf32(x, mode="rz") == np.float32(1.0)

    def test_no_overflow_for_large_fp32(self):
        # TF32 has FP32's exponent range — huge values survive
        x = np.array([1e38, -1e38], dtype=np.float32)
        out = to_tf32(x)
        assert np.all(np.isfinite(out))

    def test_preserves_nan_and_inf(self):
        x = np.array([np.nan, np.inf, -np.inf], dtype=np.float32)
        out = to_tf32(x)
        assert np.isnan(out[0]) and out[1] == np.inf and out[2] == -np.inf

    def test_sign_symmetry(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=500).astype(np.float32)
        np.testing.assert_array_equal(to_tf32(-x), -to_tf32(x))


class TestFP16:
    def test_overflow_saturates_to_inf(self):
        x = np.array([1e5, -1e5, 70000.0], dtype=np.float32)
        out = to_fp16(x)
        assert out[0] == np.inf and out[1] == -np.inf and out[2] == np.inf

    def test_max_finite_preserved(self):
        assert to_fp16(np.float32(65504.0)) == np.float32(65504.0)

    def test_subnormal_flush_behaviour(self):
        # FP16 keeps subnormals down to 2^-24
        tiny = np.float32(2.0 ** -24)
        assert to_fp16(tiny) == tiny
        # below half the smallest subnormal -> 0
        assert to_fp16(np.float32(2.0 ** -26)) == 0.0

    def test_rz_mode_truncates_toward_zero(self):
        x = np.float32(1.0) + np.float32(2.0 ** -11)  # just above 1.0 lattice
        assert to_fp16(x, mode="rz") == np.float32(1.0)
        xn = -x
        assert to_fp16(xn, mode="rz") == np.float32(-1.0)

    def test_matches_numpy_float16(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=2000).astype(np.float32) * 50
        np.testing.assert_array_equal(
            to_fp16(x), x.astype(np.float16).astype(np.float32))


class TestBF16:
    def test_error_bound(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=5000).astype(np.float32) * 1e4
        err = np.abs((to_bf16(x) - x) / x)
        assert np.max(err) <= 2.0 ** -8

    def test_coarser_than_tf32(self):
        x = np.float32(1.0) + np.float32(2.0 ** -10)
        assert to_tf32(x) == x          # representable in TF32
        assert to_bf16(x) != x          # not representable in BF16


class TestQuantize:
    def test_fp32_identity(self):
        x = np.array([1.1, 2.2, 3.3], dtype=np.float32)
        np.testing.assert_array_equal(quantize(x, "fp32"), x)

    def test_dispatch(self):
        x = np.float32(1.0) + np.float32(2.0 ** -9)
        np.testing.assert_array_equal(quantize(x, "tf32"), to_tf32(x))
        np.testing.assert_array_equal(quantize(x, "fp16"), to_fp16(x))
        np.testing.assert_array_equal(quantize(x, "bf16"), to_bf16(x))

    def test_idempotent(self):
        rng = np.random.default_rng(17)
        x = rng.normal(size=300).astype(np.float32)
        for fmt in ("fp16", "bf16", "tf32"):
            q = quantize(x, fmt)
            np.testing.assert_array_equal(quantize(q, fmt), q)

    def test_output_dtype_is_float32(self):
        for fmt in ("fp16", "bf16", "tf32", "fp32"):
            assert quantize(np.ones(4), fmt).dtype == np.float32
