"""Tests for the worker pool: parity, crash recovery, watchdogs.

Multiprocessing tests use the spawn start method (the pool default) with
tiny LGA budgets, so each runs in a few seconds.
"""

import os

import pytest

from repro.core import DockingConfig, DockingEngine
from repro.robustness import WatchdogTimeout
from repro.search.lga import LGAConfig
from repro.serve import DockingJob, WorkerPool, seed_from_spec, spawn_seed
from repro.testcases import get_test_case

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))


def _jobs(names, entropy=7, spec_extra=None):
    return [DockingJob(spec={"kind": "case", "case": n,
                             **(spec_extra or {})},
                       config=TINY, n_runs=2,
                       seed=spawn_seed(entropy, i), label=n)
            for i, n in enumerate(names)]


class TestInlinePool:
    def test_inline_matches_sequential_engine(self):
        results = {r.label: r
                   for r in WorkerPool(workers=0).map(_jobs(["1u4d",
                                                             "1xoz"]))}
        for i, name in enumerate(["1u4d", "1xoz"]):
            seq = DockingEngine(get_test_case(name), TINY).dock(
                n_runs=2, seed=seed_from_spec(spawn_seed(7, i)))
            assert results[name].status == "ok"
            assert results[name].best_score == seq.best_score

    def test_inline_retries_transient_errors(self, tmp_path, monkeypatch):
        from repro.serve import pool as pool_mod
        calls = {"n": 0}
        real = pool_mod.execute_job

        def flaky(job, cache=None, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return real(job, cache, **kw)

        monkeypatch.setattr(pool_mod, "execute_job", flaky)
        pool = WorkerPool(workers=0, retries=1, backoff=0.0)
        [res] = list(pool.map(_jobs(["1u4d"])))
        assert res.status == "ok"
        assert res.attempts == 2

    def test_inline_watchdog_failure_not_retried(self):
        pool = WorkerPool(workers=0, retries=3, backoff=0.0,
                          job_wall_seconds=0.0)   # expires immediately
        [res] = list(pool.map(_jobs(["1u4d"])))
        assert res.status == "dead"               # terminal: dead-lettered
        assert res.attempts == 1                  # deterministic: no retry
        assert res.error["error_type"] == WatchdogTimeout.__name__
        assert pool.dead_letters == [res]
        assert res.extra["attempt_history"][0]["error_type"] == \
            WatchdogTimeout.__name__


class TestProcessPool:
    def test_two_workers_match_sequential_engine(self):
        """Acceptance: pool results are identical in best-score content
        to sequential engine runs with the same spawned seeds."""
        names = ["1u4d", "1xoz", "1yv3", "1owe"]
        pool = WorkerPool(workers=2, poll_seconds=0.05)
        results = {r.label: r for r in pool.map(_jobs(names))}
        assert len(results) == 4
        for i, name in enumerate(names):
            seq = DockingEngine(get_test_case(name), TINY).dock(
                n_runs=2, seed=seed_from_spec(spawn_seed(7, i)))
            assert results[name].status == "ok"
            assert results[name].best_score == seq.best_score

    def test_killed_worker_job_retried_and_completes(self, tmp_path):
        """Acceptance: killing a worker mid-job loses no jobs and
        duplicates none."""
        marker = str(tmp_path / "crash-once")
        jobs = _jobs(["1xoz", "1yv3"])
        jobs.append(DockingJob(
            spec={"kind": "case", "case": "1u4d", "crash_once": marker},
            config=TINY, n_runs=2, seed=spawn_seed(7, 2), label="victim"))
        pool = WorkerPool(workers=2, retries=2, backoff=0.05,
                          poll_seconds=0.05)
        results = list(pool.map(jobs))
        assert os.path.exists(marker)             # the crash really fired
        assert pool.workers_replaced >= 1
        by_label = {}
        for r in results:
            assert r.label not in by_label        # exactly-once results
            by_label[r.label] = r
        assert set(by_label) == {"1xoz", "1yv3", "victim"}
        assert all(r.status == "ok" for r in results)
        victim = by_label["victim"]
        assert victim.attempts >= 2               # crash consumed attempt 1
        seq = DockingEngine(get_test_case("1u4d"), TINY).dock(
            n_runs=2, seed=seed_from_spec(spawn_seed(7, 2)))
        assert victim.best_score == seq.best_score

    def test_worker_exception_reported_after_retries(self):
        bad = DockingJob(spec={"kind": "case", "case": "no-such-case"},
                         config=TINY, n_runs=2, label="bad")
        pool = WorkerPool(workers=1, retries=1, backoff=0.01,
                          poll_seconds=0.05)
        [res] = list(pool.map([bad]))
        assert res.status == "dead"
        assert res.attempts == 2
        assert res.error["error_type"] == "ValueError"
        assert "no-such-case" in res.error["message"]
        assert pool.dead_letters == [res]
        assert [h["error_type"]
                for h in res.extra["attempt_history"]] == \
            ["ValueError", "ValueError"]

    def test_per_job_cache_stats_reported(self):
        jobs = _jobs(["1u4d", "1u4d"])    # same case, distinct seeds
        pool = WorkerPool(workers=1, poll_seconds=0.05)
        results = list(pool.map(jobs))
        assert len(results) == 2
        assert all(r.status == "ok" and r.cache is not None
                   for r in results)
        # the worker builds the case once; the second job hits
        assert sum(r.cache["hits"] for r in results) >= 1

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=-1)

    def test_crash_loop_breaker_aborts(self, tmp_path):
        """A pool that keeps losing workers aborts at max_respawns
        instead of respawning forever."""
        marker = str(tmp_path / "crash-once")
        job = DockingJob(
            spec={"kind": "case", "case": "1u4d", "crash_once": marker},
            config=TINY, n_runs=2, label="victim")
        pool = WorkerPool(workers=1, retries=2, backoff=0.05,
                          poll_seconds=0.05, max_respawns=0)
        with pytest.raises(RuntimeError, match="crash-looping"):
            list(pool.map([job]))


def test_jobs_helper_uses_distinct_spawned_streams():
    a, b = _jobs(["1u4d", "1u4d"])
    assert a.seed != b.seed
    assert a.job_id != b.job_id


class TestResultValidation:
    """Edge cases of parent-side payload validation: a worker that lies
    (non-finite scores, missing run lists) must never count as done."""

    def _ok_payload(self, scores=(-5.0, -4.2)):
        return {"status": "ok",
                "result": {"runs": [{"best_score": s} for s in scores]}}

    def test_well_formed_payload_validates(self):
        from repro.serve.pool import validate_result_payload
        assert validate_result_payload(self._ok_payload()) is None

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), None, "nan"])
    def test_non_finite_or_missing_best_score_rejected(self, bad):
        from repro.serve.pool import validate_result_payload
        payload = self._ok_payload(scores=(-5.0,))
        payload["result"]["runs"].append({"best_score": bad})
        err = validate_result_payload(payload)
        assert err["error_type"] == "NonFiniteResult"
        assert err["retryable"] is True
        assert "run 1" in err["message"]

    @pytest.mark.parametrize("payload", [
        None,                                     # not a dict at all
        {},                                       # no result
        {"result": None},                         # result wiped
        {"result": {}},                           # runs missing
        {"result": {"runs": []}},                 # truncated empty
        {"result": {"runs": "gone"}},             # wrong type
    ])
    def test_structurally_broken_payloads_rejected(self, payload):
        from repro.serve.pool import validate_result_payload
        err = validate_result_payload(payload)
        assert err["error_type"] == "CorruptResult"
        assert err["retryable"] is True

    def test_run_record_that_is_not_a_dict_rejected(self):
        from repro.serve.pool import validate_result_payload
        payload = {"result": {"runs": [42]}}
        err = validate_result_payload(payload)
        assert err["error_type"] == "NonFiniteResult"

    def test_missing_quarantine_and_history_are_not_fatal(self):
        """Advisory metadata (quarantine records, attempt history) may
        be absent or truncated without invalidating a sound result."""
        from repro.serve.pool import validate_result_payload
        payload = self._ok_payload()
        payload["extra"] = {"attempt_history": []}    # truncated
        assert validate_result_payload(payload) is None
        del payload["extra"]                          # missing entirely
        assert validate_result_payload(payload) is None


class TestHeartbeatConfig:
    """The heartbeat cadence is a pool/CLI knob, never part of job
    identity (DockingConfig feeds the content hash)."""

    def test_default_interval(self):
        from repro.serve import DEFAULT_HEARTBEAT_SECONDS
        pool = WorkerPool(workers=0)
        assert pool.heartbeat_seconds == DEFAULT_HEARTBEAT_SECONDS

    @pytest.mark.parametrize("bad", [0, -1.5])
    def test_non_positive_interval_rejected(self, bad):
        with pytest.raises(ValueError, match="heartbeat"):
            WorkerPool(workers=0, heartbeat_seconds=bad)

    def test_inline_heartbeat_reports_configured_interval(self):
        pool = WorkerPool(workers=0, heartbeat_seconds=0.25)
        list(pool.map(_jobs(["1u4d"])))
        hb = pool.heartbeats["inline"]
        assert hb["interval_s"] == 0.25
        assert hb["jobs_done"] == 1

    def test_interval_not_in_job_identity(self):
        a, b = _jobs(["1u4d"]), _jobs(["1u4d"])
        assert a[0].job_id == b[0].job_id
        assert "heartbeat" not in str(a[0].to_dict())

    def test_report_renders_interval(self, tmp_path):
        """The trace report surfaces the effective cadence per worker."""
        from repro.obs import render_summary, summarize_log
        from repro.obs.trace import configure, disable
        log = tmp_path / "trace.jsonl"
        configure(log, source="main")
        try:
            pool = WorkerPool(workers=0, heartbeat_seconds=0.5,
                              trace_path=str(log))
            list(pool.map(_jobs(["1u4d"])))
        finally:
            disable()
        text = render_summary(summarize_log(log))
        assert "heartbeat every 0.5s" in text
