"""Tests of the SLO scheduler: admission, WDRR fairness, routing,
autoscale.

A stub predictor with a fixed per-eval cost makes every predicted
runtime exact, so the admission arithmetic and the deficit accounting
can be asserted to the second.
"""

import pytest

from repro.core.config import DockingConfig
from repro.gateway import AdmissionError, SLOScheduler
from repro.search.lga import LGAConfig
from repro.serve import DockingJob, shard_for


class StubPredictor:
    """Fixed per-eval cost: predicted seconds == evals x cost."""

    def __init__(self, eval_s=1e-3):
        self.eval_s = eval_s

    def shape_for_spec(self, spec):
        return spec.get("case", "?")

    def predict_seconds(self, shape, budget_evals, **kw):
        return budget_evals * self.eval_s


def _job(case="1u4d", evals=1000, n_runs=1, seed=0, label=""):
    cfg = DockingConfig(
        backend="baseline",
        lga=LGAConfig(pop_size=10, max_evals=evals, max_gens=5,
                      ls_iters=5, ls_rate=0.25))
    return DockingJob(spec={"kind": "case", "case": case}, config=cfg,
                      n_runs=n_runs, seed=seed, label=label or case)


def _sched(**kw):
    kw.setdefault("predictor", StubPredictor())
    kw.setdefault("n_shards", 2)
    return SLOScheduler(**kw)


class TestPrediction:
    def test_budget_is_runs_times_max_evals(self):
        s = _sched()
        # 3 runs x 2000 evals x 1e-3 s/eval
        assert s.predict_seconds(_job(evals=2000, n_runs=3)) == \
            pytest.approx(6.0)


class TestAdmission:
    def test_hash_route_matches_partition(self):
        s = _sched()
        for seed in range(8):
            job = _job(seed=seed)
            shard, predicted = s.admit(job)
            assert shard == shard_for(job.job_id, 2)
            assert predicted == pytest.approx(1.0)
        assert s.admitted == 8

    def test_slo_rejection_carries_structured_payload(self):
        s = _sched(slo_seconds=0.5)
        with pytest.raises(AdmissionError) as exc:
            s.admit(_job(evals=1000))       # predicted 1.0s > 0.5s SLO
        p = exc.value.payload
        assert p["error"] == "admission_rejected"
        assert p["reason"] == "slo"
        assert p["limit_seconds"] == 0.5
        assert p["predicted_seconds"] == pytest.approx(1.0)
        assert p["retry_after_s"] == pytest.approx(0.5)
        assert s.rejected == 1 and s.admitted == 0

    def test_deadline_tighter_than_slo_rejects(self):
        s = _sched(slo_seconds=100.0)
        job = _job(evals=1000)
        with pytest.raises(AdmissionError) as exc:
            s.admit(job, deadline_s=0.25)
        assert exc.value.payload["reason"] == "deadline"
        # same job without the deadline is admitted
        s.admit(job)

    def test_backlog_counts_against_the_limit(self):
        """Admission prices the queue, not just the job: a shard full of
        admitted work pushes later jobs over the SLO."""
        s = _sched(n_shards=1, slo_seconds=2.5)
        s.admit(_job(seed=0))                # backlog now 1.0s
        s.admit(_job(seed=1))                # 1.0 wait + 1.0 job = 2.0 ok
        with pytest.raises(AdmissionError):  # 2.0 wait + 1.0 job > 2.5
            s.admit(_job(seed=2))
        # draining the backlog re-opens admission
        s.job_done(0, predicted_s=1.0)
        s.job_done(0, predicted_s=1.0)
        s.admit(_job(seed=2))

    def test_worker_count_scales_drain_rate(self):
        """Doubling a shard's workers halves its predicted wait."""
        s = _sched(n_shards=1, slo_seconds=2.5, workers=2)
        for seed in range(4):                # backlog 4s, wait 4/2=2s
            s.admit(_job(seed=seed))
        with pytest.raises(AdmissionError):  # wait 2.0 + 1.0 > 2.5
            s.admit(_job(seed=9))


class TestPackedRouting:
    def test_new_ids_go_to_least_loaded_shard(self):
        s = _sched(route="packed")
        a = _job(evals=5000, seed=0)         # 5s onto shard 0
        assert s.admit(a)[0] == 0
        b = _job(evals=1000, seed=1)         # shard 1 now lighter
        assert s.admit(b)[0] == 1
        c = _job(evals=1000, seed=2)         # 1: 1s < 0: 5s
        assert s.admit(c)[0] == 1

    def test_resubmitted_id_is_sticky(self):
        s = _sched(route="packed")
        job = _job(evals=5000, seed=0)
        first = s.admit(job)[0]
        # pile work onto the other shard so least-loaded would flip
        other = _job(evals=20_000, seed=1)
        s.admit(other)
        assert s.shard_of(job.job_id) == first

    def test_unknown_route_rejected(self):
        with pytest.raises(ValueError, match="route"):
            _sched(route="round-robin")


class TestFairness:
    def test_wdrr_shares_follow_weights(self):
        """Weight-2 tenant drains twice the predicted seconds per round."""
        s = _sched(n_shards=1, quantum_s=1.0,
                   tenant_weights={"heavy": 2.0, "light": 1.0})
        for i in range(8):
            s.admit(_job(seed=i), tenant="heavy")       # 1s each
        for i in range(8, 16):
            s.admit(_job(seed=i), tenant="light")       # 1s each
        batch = s.next_batch(0)
        served = {"heavy": 0, "light": 0}
        for item in batch:
            served[item.tenant] += 1
        assert served["heavy"] == 2
        assert served["light"] == 1

    def test_over_quantum_job_cannot_wedge_its_tenant(self):
        s = _sched(n_shards=1, quantum_s=0.1)
        s.admit(_job(evals=50_000, seed=0))   # 50s >> quantum
        batch = s.next_batch(0)
        assert len(batch) == 1                # served anyway

    def test_rounds_drain_everything_exactly_once(self):
        s = _sched(n_shards=1)
        jobs = [_job(seed=i) for i in range(10)]
        for i, job in enumerate(jobs):
            s.admit(job, tenant=f"t{i % 3}")
        seen = []
        for _ in range(100):
            batch = s.next_batch(0)
            if not batch:
                break
            seen.extend(item.job.job_id for item in batch)
        assert sorted(seen) == sorted(j.job_id for j in jobs)
        assert s.next_batch(0) == []

    def test_max_jobs_caps_a_batch(self):
        s = _sched(n_shards=1, quantum_s=10.0)   # quantum covers all 6
        for i in range(6):
            s.admit(_job(seed=i))
        assert len(s.next_batch(0, max_jobs=2)) == 2


class TestAutoscale:
    def test_desired_workers_tracks_predicted_backlog(self):
        s = _sched(n_shards=1, drain_target_s=2.0, max_workers=8)
        assert s.desired_workers(0) == 1          # empty: min
        for i in range(6):
            s.admit(_job(seed=i))                 # 6s backlog
        assert s.desired_workers(0) == 3          # ceil(6/2)

    def test_clamped_to_min_max(self):
        s = _sched(n_shards=1, drain_target_s=0.5, min_workers=2,
                   max_workers=4)
        assert s.desired_workers(0) == 2          # empty: min
        for i in range(8):
            s.admit(_job(seed=i))                 # 8s / 0.5s = 16 want
        assert s.desired_workers(0) == 4          # max clamp

    def test_apply_autoscale_updates_worker_view(self):
        s = _sched(n_shards=1, drain_target_s=1.0, max_workers=8)
        for i in range(4):
            s.admit(_job(seed=i))
        assert s.apply_autoscale(0) == 4
        assert s.workers[0] == 4


class TestSnapshot:
    def test_snapshot_reports_per_shard_state(self):
        s = _sched(slo_seconds=30.0)
        for i in range(4):
            s.admit(_job(seed=i), tenant="t")
        snap = s.snapshot()
        assert snap["n_shards"] == 2
        assert snap["slo_seconds"] == 30.0
        assert snap["admitted"] == 4
        assert sum(sh["queued"] for sh in snap["shards"]) == 4
        assert sum(sh["predicted_backlog_s"]
                   for sh in snap["shards"]) == pytest.approx(4.0)
