"""Tests for the E50 campaign orchestration API."""

import math

import pytest

from repro.analysis.campaign import CampaignResult, E50Campaign
from repro.search.lga import LGAConfig


@pytest.fixture(scope="module")
def tiny_campaign():
    return E50Campaign(
        cases=["1u4d"],
        backends=["baseline", "tcec-tf32"],
        n_runs=3,
        seed=5,
        lga=LGAConfig(pop_size=8, max_evals=600, max_gens=12,
                      ls_iters=6, ls_rate=0.25),
    )


@pytest.fixture(scope="module")
def tiny_results(tiny_campaign):
    return tiny_campaign.run()


class TestCampaign:
    def test_runs_every_cell(self, tiny_results):
        assert len(tiny_results) == 2
        assert {(r.case, r.backend) for r in tiny_results} == {
            ("1u4d", "baseline"), ("1u4d", "tcec-tf32")}

    def test_cell_fields(self, tiny_results):
        r = tiny_results[0]
        assert r.n_runs == 3
        assert r.budget > 0
        assert 0 <= r.score_successes <= 3
        assert r.e50_score > 0
        assert len(r.e50_score_ci) == 2
        assert math.isfinite(r.best_score)

    def test_progress_callback(self, tiny_campaign):
        seen = []
        tiny_campaign.run(progress=lambda c, b: seen.append((c, b)))
        assert seen == [("1u4d", "baseline"), ("1u4d", "tcec-tf32")]

    def test_to_rows(self, tiny_results):
        rows = E50Campaign.to_rows(tiny_results)
        assert rows[0]["case"] == "1u4d"
        assert isinstance(rows[0]["e50_score_ci"], list)

    def test_save_load_round_trip(self, tiny_results, tmp_path):
        path = tmp_path / "campaign.json"
        E50Campaign.save(tiny_results, path)
        back = E50Campaign.load(path)
        assert len(back) == len(tiny_results)
        assert back[0].case == tiny_results[0].case
        assert back[0].e50_score == pytest.approx(tiny_results[0].e50_score)
        assert isinstance(back[0].e50_score_ci, tuple)

    def test_deterministic_given_seed(self, tiny_campaign):
        a = tiny_campaign.run_cell("1u4d", "baseline")
        b = tiny_campaign.run_cell("1u4d", "baseline")
        assert a.best_score == b.best_score
        assert a.e50_score == b.e50_score
