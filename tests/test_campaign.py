"""Tests for the E50 campaign orchestration API."""

import math

import pytest

from repro.analysis.campaign import E50Campaign
from repro.robustness.watchdog import CellFailure, Watchdog, WatchdogTimeout
from repro.search.lga import LGAConfig

TINY_LGA = LGAConfig(pop_size=8, max_evals=600, max_gens=12,
                     ls_iters=6, ls_rate=0.25)


def tiny(**kwargs):
    defaults = dict(cases=["1u4d"], backends=["baseline", "tcec-tf32"],
                    n_runs=3, seed=5, lga=TINY_LGA)
    defaults.update(kwargs)
    return E50Campaign(**defaults)


@pytest.fixture(scope="module")
def tiny_campaign():
    return E50Campaign(
        cases=["1u4d"],
        backends=["baseline", "tcec-tf32"],
        n_runs=3,
        seed=5,
        lga=LGAConfig(pop_size=8, max_evals=600, max_gens=12,
                      ls_iters=6, ls_rate=0.25),
    )


@pytest.fixture(scope="module")
def tiny_results(tiny_campaign):
    return tiny_campaign.run()


class TestCampaign:
    def test_runs_every_cell(self, tiny_results):
        assert len(tiny_results) == 2
        assert {(r.case, r.backend) for r in tiny_results} == {
            ("1u4d", "baseline"), ("1u4d", "tcec-tf32")}

    def test_cell_fields(self, tiny_results):
        r = tiny_results[0]
        assert r.n_runs == 3
        assert r.budget > 0
        assert 0 <= r.score_successes <= 3
        assert r.e50_score > 0
        assert len(r.e50_score_ci) == 2
        assert math.isfinite(r.best_score)

    def test_progress_callback(self, tiny_campaign):
        seen = []
        tiny_campaign.run(progress=lambda c, b: seen.append((c, b)))
        assert seen == [("1u4d", "baseline"), ("1u4d", "tcec-tf32")]

    def test_to_rows(self, tiny_results):
        rows = E50Campaign.to_rows(tiny_results)
        assert rows[0]["case"] == "1u4d"
        assert isinstance(rows[0]["e50_score_ci"], list)

    def test_save_load_round_trip(self, tiny_results, tmp_path):
        path = tmp_path / "campaign.json"
        E50Campaign.save(tiny_results, path)
        back = E50Campaign.load(path)
        assert len(back) == len(tiny_results)
        assert back[0].case == tiny_results[0].case
        assert back[0].e50_score == pytest.approx(tiny_results[0].e50_score)
        assert isinstance(back[0].e50_score_ci, tuple)

    def test_deterministic_given_seed(self, tiny_campaign):
        a = tiny_campaign.run_cell("1u4d", "baseline")
        b = tiny_campaign.run_cell("1u4d", "baseline")
        assert a.best_score == b.best_score
        assert a.e50_score == b.e50_score

    def test_budget_reflects_actual_consumption(self, tiny_results):
        # budget is the max evals actually consumed; budget_mean the mean —
        # not the configured cap (runs terminate heterogeneously)
        r = tiny_results[0]
        assert 0 < r.budget_mean <= r.budget <= TINY_LGA.max_evals


class TestAtomicCheckpoint:
    def test_save_leaves_no_temp_file(self, tiny_results, tmp_path):
        path = tmp_path / "sweep.json"
        E50Campaign.save(tiny_results, path)
        assert path.exists()
        assert not path.with_name("sweep.json.tmp").exists()
        assert len(E50Campaign.load(path)) == len(tiny_results)

    def test_save_replaces_not_appends(self, tiny_results, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text("{corrupt json that must be replaced")
        E50Campaign.save(tiny_results, path)
        assert len(E50Campaign.load(path)) == len(tiny_results)

    def test_interrupted_write_keeps_old_checkpoint(self, tiny_results,
                                                    tmp_path, monkeypatch):
        # kill the sweep *inside* the write: os.replace never ran, so the
        # previous checkpoint must still load
        path = tmp_path / "sweep.json"
        E50Campaign.save(tiny_results[:1], path)
        monkeypatch.setattr("repro.analysis.campaign.os.replace",
                            lambda *a: (_ for _ in ()).throw(
                                KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            E50Campaign.save(tiny_results, path)
        assert len(E50Campaign.load(path)) == 1


class TestResume:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="checkpoint"):
            tiny().run(resume=True)

    def test_killed_sweep_resumes_incomplete_cells_only(self, tmp_path):
        path = tmp_path / "sweep.json"

        # first attempt dies after the first cell completes (simulated
        # kill while the second cell is in flight)
        class Kill(Exception):
            pass

        campaign = tiny()
        calls = []

        def die_on_second(case, backend):
            if calls:
                raise Kill()
            calls.append((case, backend))

        with pytest.raises(Kill):
            campaign.run(progress=die_on_second, checkpoint=path)
        assert len(E50Campaign.load(path)) == 1  # one cell checkpointed

        # the resumed sweep re-runs only the incomplete cell...
        resumed_cells = []
        results = tiny().run(progress=lambda c, b: resumed_cells.append(
            (c, b)), checkpoint=path, resume=True)
        assert resumed_cells == [("1u4d", "tcec-tf32")]
        # ...and still returns the full grid, identical to a clean sweep
        clean = tiny().run()
        assert [(r.case, r.backend) for r in results] == \
            [(r.case, r.backend) for r in clean]
        assert [r.best_score for r in results] == \
            [r.best_score for r in clean]

    def test_resume_with_complete_checkpoint_runs_nothing(self, tmp_path):
        path = tmp_path / "sweep.json"
        first = tiny().run(checkpoint=path)
        ran = []
        again = tiny().run(progress=lambda c, b: ran.append((c, b)),
                           checkpoint=path, resume=True)
        assert ran == []
        assert [r.best_score for r in again] == \
            [r.best_score for r in first]

    def test_resume_without_existing_checkpoint_runs_all(self, tmp_path):
        ran = []
        tiny().run(progress=lambda c, b: ran.append((c, b)),
                   checkpoint=tmp_path / "fresh.json", resume=True)
        assert len(ran) == 2


class TestRetryAndWatchdog:
    def test_transient_error_retried_with_backoff(self):
        campaign = tiny(backends=["baseline"], retries=2, backoff=0.5)
        sleeps = []
        attempts = []
        real = campaign.run_cell

        def flaky(case, backend):
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient filesystem hiccup")
            return real(case, backend)

        campaign.run_cell = flaky
        results = campaign.run(sleep=sleeps.append)
        assert len(results) == 1            # cell succeeded on attempt 3
        assert len(attempts) == 3
        assert sleeps == [0.5, 1.0]         # exponential backoff
        assert campaign.failures == []

    def test_exhausted_retries_record_failure_and_continue(self):
        campaign = tiny(retries=1, backoff=0.1)
        sleeps = []
        real = campaign.run_cell

        def broken(case, backend):
            if backend == "baseline":
                raise OSError("cell permanently broken")
            return real(case, backend)

        campaign.run_cell = broken
        results = campaign.run(sleep=sleeps.append)
        # the broken cell is dropped; the sweep still finishes the rest
        assert [(r.case, r.backend) for r in results] == [
            ("1u4d", "tcec-tf32")]
        assert sleeps == [0.1]
        [failure] = campaign.failures
        assert failure.backend == "baseline"
        assert failure.error_type == "OSError"
        assert failure.attempts == 2
        assert failure.retryable

    def test_watchdog_abort_is_terminal_not_retried(self):
        # an eval watchdog below one generation's consumption always fires
        campaign = tiny(backends=["baseline"], retries=3, cell_max_evals=1)
        sleeps = []
        results = campaign.run(sleep=sleeps.append)
        assert results == []
        assert sleeps == []                  # deterministic: never retried
        [failure] = campaign.failures
        assert failure.error_type == "WatchdogTimeout"
        assert not failure.retryable
        assert failure.attempts == 1
        assert failure.extra["evals"] > 1

    def test_failures_reset_between_runs(self):
        campaign = tiny(backends=["baseline"], retries=0, cell_max_evals=1)
        campaign.run()
        campaign.run()
        assert len(campaign.failures) == 1


class TestWatchdogUnit:
    def test_wall_clock_limit(self):
        t = [0.0]
        dog = Watchdog(wall_seconds=10.0, clock=lambda: t[0])
        dog.check(1, 100)
        t[0] = 10.5
        with pytest.raises(WatchdogTimeout) as exc:
            dog.check(2, 200)
        assert exc.value.elapsed == pytest.approx(10.5)
        assert exc.value.evals == 200

    def test_eval_limit(self):
        dog = Watchdog(max_evals=1000)
        dog.check(1, 1000)
        with pytest.raises(WatchdogTimeout):
            dog.check(2, 1001)

    def test_disabled_watchdog_never_fires(self):
        dog = Watchdog()
        dog.check(10 ** 6, 10 ** 9)

    def test_cell_failure_as_dict(self):
        f = CellFailure(case="7cpa", backend="tc-fp16",
                        error_type="OSError", message="boom", attempts=2,
                        retryable=True, extra={"k": 1})
        d = f.as_dict()
        assert d["case"] == "7cpa" and d["extra"] == {"k": 1}
        d["extra"]["k"] = 2                  # a copy, not the record
        assert f.extra == {"k": 1}
