"""Tests for the molecular model: params, ligand, genotype, quaternions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.docking import (
    ATOM_PARAMS,
    Ligand,
    TorsionBond,
    genotype_length,
    get_atom_params,
    random_genotypes,
)
from repro.docking.params import FE_WEIGHTS, HBOND_ACCEPTOR, HBOND_DONOR
from repro.docking.quaternion import (
    axis_angle_rotate,
    cross3,
    quat_from_rotvec,
    quat_multiply,
    quat_rotate,
    rotvec_to_matrix,
    so3_left_jacobian,
)


class TestParams:
    def test_standard_types_present(self):
        for t in ("C", "A", "N", "NA", "OA", "SA", "S", "H", "HD",
                  "F", "Cl", "Br", "I", "P"):
            assert t in ATOM_PARAMS

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown atom type"):
            get_atom_params("Xx")

    def test_hbond_roles(self):
        assert get_atom_params("HD").hbond == HBOND_DONOR
        assert get_atom_params("OA").hbond == HBOND_ACCEPTOR
        assert get_atom_params("C").hbond == 0

    def test_ad4_weights(self):
        assert FE_WEIGHTS["vdw"] == 0.1662
        assert FE_WEIGHTS["tors"] == 0.2983

    def test_hydrogen_has_no_volume(self):
        assert get_atom_params("HD").vol == 0.0


class TestTorsionBond:
    def test_validation(self):
        with pytest.raises(ValueError, match="differ"):
            TorsionBond(atom_a=1, atom_b=1, moved=(2,))
        with pytest.raises(ValueError, match="at least one"):
            TorsionBond(atom_a=0, atom_b=1, moved=())
        with pytest.raises(ValueError, match="axis atoms"):
            TorsionBond(atom_a=0, atom_b=1, moved=(1, 2))


class TestLigand:
    def test_counts(self, butane_like):
        assert butane_like.n_atoms == 5
        assert butane_like.n_rot == 1
        # rotation list: one rigid op per atom + one per (torsion, moved)
        assert butane_like.n_rotlist == 5 + 2

    def test_reference_centred(self, butane_like):
        np.testing.assert_allclose(butane_like.ref_coords.mean(axis=0),
                                   0.0, atol=1e-12)

    def test_graph_distances(self, butane_like):
        d = butane_like.graph_distances()
        assert d[0, 4] == 4
        assert d[0, 1] == 1
        assert np.all(np.diag(d) == 0)
        np.testing.assert_array_equal(d, d.T)

    def test_intra_pairs_exclude_close_neighbours(self, butane_like):
        pairs = butane_like.intra_pairs()
        # only the 0-4 pair is >= 4 bonds apart AND torsion-separated
        assert pairs.shape == (1, 2)
        assert tuple(pairs[0]) == (0, 4)

    def test_torsion_signature(self, butane_like):
        sigs = butane_like.torsion_signature()
        assert sigs[0] == sigs[1] == frozenset()
        assert sigs[3] == sigs[4] == frozenset({0})

    def test_invalid_atom_type_rejected(self):
        with pytest.raises(ValueError, match="unknown atom type"):
            Ligand("bad", ["Zz"], np.zeros((1, 3)), np.zeros(1), [])

    def test_bond_index_validation(self):
        with pytest.raises(ValueError, match="invalid bond"):
            Ligand("bad", ["C", "C"], np.zeros((2, 3)), np.zeros(2),
                   bonds=[(0, 5)])

    def test_params_arrays(self, butane_like):
        cols = butane_like.params_arrays()
        assert cols["rii"].shape == (5,)
        assert cols["hbond"][3] == HBOND_ACCEPTOR

    def test_type_indices(self, butane_like):
        order, idx = butane_like.type_indices()
        assert order == sorted(set(butane_like.atom_types))
        assert [order[i] for i in idx] == butane_like.atom_types


class TestGenotype:
    def test_length(self, butane_like):
        assert genotype_length(butane_like) == 7

    def test_random_genotypes_inside_box(self, butane_like):
        rng = np.random.default_rng(0)
        lo = np.array([-5.0, -5.0, -5.0])
        hi = np.array([5.0, 5.0, 5.0])
        g = random_genotypes(rng, 200, butane_like, lo, hi)
        assert g.shape == (200, 7)
        assert np.all(g[:, 0:3] >= lo + 1.0) and np.all(g[:, 0:3] <= hi - 1.0)
        assert np.all(np.abs(g[:, 6:]) <= np.pi)

    def test_orientation_angles_bounded(self, butane_like):
        rng = np.random.default_rng(1)
        g = random_genotypes(rng, 500, butane_like,
                             np.full(3, -5.0), np.full(3, 5.0))
        angles = np.linalg.norm(g[:, 3:6], axis=1)
        assert np.all(angles <= np.pi + 1e-9)

    def test_box_too_small(self, butane_like):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError, match="too small"):
            random_genotypes(rng, 1, butane_like,
                             np.zeros(3), np.full(3, 1.5))


class TestQuaternion:
    def test_cross3_matches_numpy(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(4, 6, 3))
        b = rng.normal(size=(4, 6, 3))
        np.testing.assert_allclose(cross3(a, b), np.cross(a, b), rtol=1e-12)

    def test_quat_from_zero_rotvec(self):
        q = quat_from_rotvec(np.zeros(3))
        np.testing.assert_allclose(q, [1, 0, 0, 0], atol=1e-15)

    def test_quat_unit_norm(self):
        rng = np.random.default_rng(4)
        q = quat_from_rotvec(rng.normal(size=(100, 3)))
        np.testing.assert_allclose(np.linalg.norm(q, axis=-1), 1.0,
                                   rtol=1e-12)

    def test_rotation_preserves_lengths(self):
        rng = np.random.default_rng(5)
        q = quat_from_rotvec(rng.normal(size=3))
        v = rng.normal(size=(10, 3))
        np.testing.assert_allclose(np.linalg.norm(quat_rotate(q, v), axis=-1),
                                   np.linalg.norm(v, axis=-1), rtol=1e-12)

    def test_quat_vs_matrix(self):
        rng = np.random.default_rng(6)
        w = rng.normal(size=3)
        v = rng.normal(size=(7, 3))
        np.testing.assert_allclose(quat_rotate(quat_from_rotvec(w), v),
                                   v @ rotvec_to_matrix(w).T, rtol=1e-10)

    def test_quat_multiply_composition(self):
        rng = np.random.default_rng(7)
        w1, w2 = rng.normal(size=3), rng.normal(size=3)
        q1, q2 = quat_from_rotvec(w1), quat_from_rotvec(w2)
        v = rng.normal(size=(5, 3))
        np.testing.assert_allclose(
            quat_rotate(quat_multiply(q1, q2), v),
            quat_rotate(q1, quat_rotate(q2, v)), rtol=1e-10)

    def test_axis_angle_rotate_quarter_turn(self):
        pts = np.array([[1.0, 0.0, 0.0]])
        out = axis_angle_rotate(pts, origin=np.zeros(3),
                                axis=np.array([0.0, 0.0, 1.0]),
                                angle=np.pi / 2)
        np.testing.assert_allclose(out, [[0.0, 1.0, 0.0]], atol=1e-12)

    def test_axis_angle_rotate_about_offset_origin(self):
        pts = np.array([[2.0, 0.0, 0.0]])
        out = axis_angle_rotate(pts, origin=np.array([1.0, 0.0, 0.0]),
                                axis=np.array([0.0, 0.0, 1.0]),
                                angle=np.pi)
        np.testing.assert_allclose(out, [[0.0, 0.0, 0.0]], atol=1e-12)

    def test_left_jacobian_small_angle_is_identity(self):
        np.testing.assert_allclose(so3_left_jacobian(np.zeros(3)),
                                   np.eye(3), atol=1e-12)

    def test_left_jacobian_finite_difference(self):
        """J_l connects rotvec perturbations to world rotations:
        exp((w+dw)^) ~= exp((J_l dw)^) exp(w^)."""
        rng = np.random.default_rng(8)
        w = rng.normal(size=3)
        jl = so3_left_jacobian(w)
        eps = 1e-6
        for k in range(3):
            dw = np.zeros(3)
            dw[k] = eps
            r1 = rotvec_to_matrix(w + dw)
            r0 = rotvec_to_matrix(w)
            dr = r1 @ r0.T           # = exp(delta^), small world rotation
            delta = np.array([dr[2, 1] - dr[1, 2],
                              dr[0, 2] - dr[2, 0],
                              dr[1, 0] - dr[0, 1]]) / 2.0
            np.testing.assert_allclose(delta / eps, jl[:, k], atol=1e-4)


@given(st.floats(min_value=-3, max_value=3),
       st.floats(min_value=-3, max_value=3),
       st.floats(min_value=-3, max_value=3))
@settings(max_examples=100, deadline=None)
def test_rotation_roundtrip_property(x, y, z):
    """Rotating by w then by -w (applied in reverse) restores the input."""
    w = np.array([x, y, z])
    v = np.array([[1.0, 2.0, 3.0]])
    q = quat_from_rotvec(w)
    qinv = quat_from_rotvec(-w) if np.linalg.norm(w) < np.pi else None
    rotated = quat_rotate(q, v)
    if qinv is not None:
        back = quat_rotate(qinv, rotated)
        np.testing.assert_allclose(back, v, atol=1e-9)
