"""Tests for the roofline classifier, proportional selection, bootstrap CI."""

import math

import numpy as np
import pytest

from repro.analysis import bootstrap_e50_ci, estimate_e50
from repro.search.ga import GAConfig, GeneticAlgorithm
from repro.simt import KernelWorkload, classify, profile_kernel, ridge_point
from repro.simt.devices import list_devices

WL = KernelWorkload(n_rotlist=412, n_atoms=50, n_intra=325, n_genes=21,
                    n_blocks=3000)


class TestRoofline:
    def test_ridge_points(self):
        # A100 FP32: 19.49 TFLOP/s over 1.56 TB/s -> ~12.5 FLOP/B
        assert ridge_point("A100") == pytest.approx(12.49, abs=0.05)
        # with Tensor Cores the roof (and ridge) rises
        assert ridge_point("A100", use_tensor_cores=True) > ridge_point("A100")

    def test_kernels_compute_bound(self):
        """Paper Section 5.2: both implementations are compute-bound on
        every evaluated GPU."""
        for dev in list_devices():
            for backend in ("baseline", "tcec-tf32"):
                p = profile_kernel(dev, 128, backend, WL)
                pt = classify(p)
                assert pt.bound == "compute", (dev.name, backend, pt)

    def test_efficiency_below_one(self):
        p = profile_kernel("A100", 64, "baseline", WL)
        pt = classify(p)
        assert 0.0 < pt.efficiency < 1.0
        assert pt.roof_gflops <= pt.peak_gflops


class TestProportionalSelection:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="selection"):
            GAConfig(selection="rank")

    def test_prefers_fitter(self):
        ga = GeneticAlgorithm(GAConfig(selection="proportional"),
                              np.random.default_rng(0))
        scores = np.array([0.0, 10.0, 10.0, 10.0])
        picks = ga.select_parents(scores, 4000)
        counts = np.bincount(picks, minlength=4)
        # individual 0 has all the rescaled fitness mass
        assert counts[0] == 4000

    def test_degenerate_population_uniform(self):
        ga = GeneticAlgorithm(GAConfig(selection="proportional"),
                              np.random.default_rng(1))
        scores = np.full(6, 3.0)
        picks = ga.select_parents(scores, 3000)
        counts = np.bincount(picks, minlength=6)
        assert np.all(counts > 300)   # roughly uniform

    def test_full_generation_with_proportional(self):
        ga = GeneticAlgorithm(GAConfig(selection="proportional"),
                              np.random.default_rng(2))
        genes = np.random.default_rng(3).normal(size=(12, 7))
        out = ga.next_generation(genes, np.arange(12, dtype=float))
        assert out.shape == genes.shape


class TestBootstrapCI:
    def test_contains_point_estimate(self):
        times = [100, 150, 200, 250, 300, None, None, 400]
        est = estimate_e50(times, budgets=1000)
        lo, hi = bootstrap_e50_ci(times, budgets=1000, seed=3)
        assert lo <= est.e50 <= hi

    def test_all_censored_gives_inf(self):
        lo, hi = bootstrap_e50_ci([None, None], budgets=100)
        assert math.isinf(lo) and math.isinf(hi)

    def test_narrower_with_more_runs(self):
        few = [100, 200, None]
        many = few * 8
        lo1, hi1 = bootstrap_e50_ci(few, budgets=500, seed=1)
        lo2, hi2 = bootstrap_e50_ci(many, budgets=500, seed=1)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_e50_ci([], budgets=10)
        with pytest.raises(ValueError):
            bootstrap_e50_ci([1], budgets=10, confidence=1.5)
