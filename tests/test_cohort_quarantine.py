"""Lane quarantine: a poisoned cohort member freezes out of the
lock-step search without perturbing its siblings.

Acceptance (ISSUE 7 golden): a cohort with one deliberately-poisoned
lane produces bit-identical results for all surviving lanes vs. docking
them without the poisoned member; the fault is attributed to the right
lane in the ledger.
"""

from dataclasses import replace

import numpy as np

from repro.core.config import DockingConfig
from repro.core.engine import dock_cohort
from repro.reduction.api import ReductionBackend, get_reduction_backend
from repro.robustness import FaultLedger, GuardedReduction
from repro.robustness.inject import FaultInjector
from repro.search.cohort import CohortLGA
from repro.search.lga import LGAConfig
from repro.testcases import get_test_case

BASE = dict(pop_size=8, max_evals=300, max_gens=10, ls_iters=3,
            ls_rate=0.3)
MIXED = ("1u4d", "1xoz", "7cpa")
N_RUNS = 2


def _seeds(n, entropy=99):
    return [np.random.SeedSequence(entropy=entropy, spawn_key=(i,))
            for i in range(n)]


def _poison(case):
    """All-NaN affinity maps: every grid lookup goes non-finite.

    Built with ``dataclasses.replace`` — the library case object is
    shared/cached and must never be mutated.
    """
    return replace(case, maps=replace(
        case.maps, affinity=np.full_like(case.maps.affinity, np.nan)))


def _assert_member_equal(got, want):
    """Bitwise equality of one ligand's per-run LGA results."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.best_score == b.best_score
        assert a.best_genotype.tobytes() == b.best_genotype.tobytes()
        assert a.evals_used == b.evals_used


class _PoisonLaneOnce(ReductionBackend):
    """Fire-once wrapper: NaNs one lane's reduce4 output blocks on the
    first call, then passes through clean — the deterministic stand-in
    for a transient per-lane numerical fault."""

    def __init__(self, inner, lane, n_lanes):
        self.inner = inner
        self.name = inner.name
        self.cost_key = inner.cost_key
        self.lane, self.n_lanes = lane, n_lanes
        self.fired = False

    def reduce4(self, vectors):
        out = self.inner.reduce4(vectors)
        if not self.fired:
            self.fired = True
            b = out.shape[1] // self.n_lanes
            out = out.copy()
            out[:, self.lane * b:(self.lane + 1) * b] = np.nan
        return out


class TestNonFiniteScoreQuarantine:
    def test_survivors_bit_identical_and_poisoned_member_flagged(self):
        cases = [get_test_case(n) for n in MIXED]
        poisoned = list(cases)
        poisoned[1] = _poison(cases[1])
        cfg = DockingConfig(backend="baseline", lga=LGAConfig(**BASE))
        seeds = _seeds(3)

        got = dock_cohort(poisoned, cfg, n_runs=N_RUNS, seeds=seeds)
        assert got[1].quarantine is not None
        assert got[1].quarantine["reason"] == "nonfinite-score"
        assert got[1].quarantine["lane"] == 1
        assert got[0].quarantine is None and got[2].quarantine is None

        ref = dock_cohort([cases[0], cases[2]], cfg, n_runs=N_RUNS,
                          seeds=[seeds[0], seeds[2]])
        for g, r in zip((got[0], got[2]), ref):
            dg, dr = g.to_dict(), r.to_dict()
            for d in (dg, dr):
                d.pop("runtime_seconds")
            assert dg == dr

    def test_quarantine_record_round_trips(self):
        from repro.robustness import LaneQuarantine
        q = LaneQuarantine(lane=2, name="7cpa", generation=3,
                           reason="guard-raise", detail="boom")
        assert LaneQuarantine.from_dict(q.to_dict()) == q


class TestGuardRaiseQuarantine:
    def test_attributed_lane_frozen_survivors_bit_identical(self):
        scorings = [get_test_case(n).scoring() for n in MIXED]
        ledger = FaultLedger()
        backend = GuardedReduction(
            _PoisonLaneOnce(get_reduction_backend("baseline"),
                            lane=1, n_lanes=3),
            policy="raise", ledger=ledger)
        cfg = LGAConfig(**BASE)
        runner = CohortLGA(scorings, backend=backend, config=cfg,
                           seeds=_seeds(3))
        results = runner.run(n_runs=N_RUNS)

        assert set(runner.quarantines) == {1}
        q = runner.quarantines[1]
        assert q.reason == "guard-raise"
        assert q.lane == 1
        # fault attribution: every corrupted block charged to lane 1
        assert set(ledger.by_lane) == {1}
        assert ledger.by_lane[1] > 0
        assert ledger.summary()["by_lane"] == {"1": ledger.by_lane[1]}

        # survivors replay the generation and finish bit-identical to a
        # cohort that never held the poisoned member
        ref = CohortLGA([scorings[0], scorings[2]], backend="baseline",
                        config=cfg,
                        seeds=[_seeds(3)[0], _seeds(3)[2]]).run(
            n_runs=N_RUNS)
        _assert_member_equal(results[0], ref[0])
        _assert_member_equal(results[2], ref[1])


class TestGridSiteInjection:
    def test_corrupt_values_is_a_deterministic_stride(self):
        vals = np.ones((4, 100), dtype=np.float32)
        inj = FaultInjector(rate=0.01, mode="nan", seed=3)
        out, mask = inj.corrupt_values(vals)
        assert mask.shape == vals.shape
        assert int(mask.sum()) == 4          # 400 values / period 100
        assert np.isnan(out[mask]).all()
        assert not np.isnan(out[~mask]).any()
        assert vals.sum() == 400.0           # input untouched
        out2, mask2 = FaultInjector(rate=0.01, mode="nan",
                                    seed=3).corrupt_values(vals)
        assert (mask == mask2).all()
        assert inj.n_injected == 4

    def test_grid_injection_quarantines_poisoned_lanes(self):
        cases = [get_test_case(n) for n in MIXED]
        cfg = DockingConfig(backend="baseline", lga=LGAConfig(**BASE),
                            fault_policy="ignore", inject_rate=1e-3,
                            inject_mode="nan", inject_site="grid",
                            inject_seed=11)
        results = dock_cohort(cases, cfg, n_runs=N_RUNS, seeds=_seeds(3))
        hit = [r for r in results if r.quarantine is not None]
        assert hit                            # NaN grid cells poison lanes
        assert all(r.quarantine["reason"] == "nonfinite-score"
                   for r in hit)
