"""Property tests of the content-hash shard partition.

The gateway's scale-out story rests on three invariants of
``repro.serve.queue``'s partition functions: the ranges are *disjoint*
and *cover* the whole 32-bit key space for any shard count,
:func:`shard_for` is the exact arithmetic inverse of
:func:`shard_ranges`, and the mapping is *stable across processes*
(pure SHA-256 arithmetic — no ``hash()`` randomisation), so independent
gateway replicas agree on ownership without coordination.
"""

import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (DockingJob, JobQueue, WrongShard, shard_for,
                         shard_key, shard_ranges)

_SPACE = 1 << 32


def _id_for_key(key: int) -> str:
    """A synthetic 64-hex job id whose shard key is exactly ``key``."""
    return f"{key:08x}" + "0" * 56


class TestPartitionProperties:
    @given(n=st.integers(min_value=1, max_value=257))
    @settings(max_examples=60, deadline=None)
    def test_ranges_disjoint_and_cover_space(self, n):
        ranges = shard_ranges(n)
        assert len(ranges) == n
        assert ranges[0][0] == 0
        assert ranges[-1][1] == _SPACE
        for (lo, hi), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert lo < hi       # non-empty
            assert hi == lo2     # adjacent: no gap, no overlap
        # widths differ by at most one key (remainder spread one-apiece)
        widths = {hi - lo for lo, hi in ranges}
        assert len(widths) <= 2
        assert max(widths) - min(widths) <= 1

    @given(n=st.integers(min_value=1, max_value=257),
           key=st.integers(min_value=0, max_value=_SPACE - 1))
    @settings(max_examples=120, deadline=None)
    def test_shard_for_inverts_ranges(self, n, key):
        owner = shard_for(_id_for_key(key), n)
        lo, hi = shard_ranges(n)[owner]
        assert lo <= key < hi

    @given(n=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_range_edges_route_to_their_shard(self, n):
        for shard, (lo, hi) in enumerate(shard_ranges(n)):
            assert shard_for(_id_for_key(lo), n) == shard
            assert shard_for(_id_for_key(hi - 1), n) == shard

    def test_every_shard_reachable_by_real_jobs(self):
        """Real content-hash ids cover all shards at serving fan-outs."""
        ids = [DockingJob(spec={"kind": "case", "case": "1u4d"},
                          n_runs=1, seed=i).job_id for i in range(64)]
        for n in (2, 3, 4, 8):
            assert {shard_for(j, n) for j in ids} == set(range(n))


class TestCrossProcessStability:
    def test_shard_key_is_pure_hash_arithmetic(self):
        job = DockingJob(spec={"kind": "case", "case": "7cpa"}, n_runs=2)
        assert shard_key(job.job_id) == int(job.job_id[:8], 16)

    def test_mapping_stable_across_processes(self):
        """A fresh interpreter with a different PYTHONHASHSEED assigns
        every job to the same shard — replicas need no coordination."""
        jobs = [DockingJob(spec={"kind": "case", "case": c}, n_runs=2,
                           seed=s)
                for c in ("1u4d", "7cpa") for s in (0, 1, 2)]
        here = [(j.job_id, shard_for(j.job_id, 5)) for j in jobs]
        prog = (
            "import json,sys\n"
            "from repro.serve import DockingJob, shard_for\n"
            "out=[]\n"
            "for c in ('1u4d','7cpa'):\n"
            "    for s in (0,1,2):\n"
            "        j=DockingJob(spec={'kind':'case','case':c},"
            "n_runs=2,seed=s)\n"
            "        out.append((j.job_id, shard_for(j.job_id,5)))\n"
            "print(json.dumps(out))\n")
        import json
        import os
        from pathlib import Path
        src = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ, PYTHONHASHSEED="12345", PYTHONPATH=src)
        got = subprocess.run([sys.executable, "-c", prog], env=env,
                             capture_output=True, text=True, check=True)
        there = [tuple(x) for x in json.loads(got.stdout)]
        assert there == here


class TestShardedQueue:
    def _job(self, seed):
        return DockingJob(spec={"kind": "case", "case": "1u4d"},
                          n_runs=1, seed=seed)

    def test_queue_rejects_foreign_hash_range(self):
        jobs = [self._job(s) for s in range(16)]
        # find a job owned by shard 1 of 2 and offer it to shard 0
        foreign = next(j for j in jobs if shard_for(j.job_id, 2) == 1)
        local = next(j for j in jobs if shard_for(j.job_id, 2) == 0)
        q = JobQueue(shard=0, n_shards=2)
        q.submit(local)
        try:
            q.submit(foreign)
        except WrongShard as exc:
            assert exc.shard == 0
            assert exc.owner == 1
        else:
            raise AssertionError("WrongShard not raised")

    def test_disjoint_queues_partition_a_workload(self):
        jobs = [self._job(s) for s in range(24)]
        queues = [JobQueue(shard=i, n_shards=3) for i in range(3)]
        for job in jobs:
            queues[shard_for(job.job_id, 3)].submit(job)
        drained = []
        for q in queues:
            while len(q):
                drained.append(q.pop().job_id)
        assert sorted(drained) == sorted(j.job_id for j in jobs)
