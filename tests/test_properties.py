"""Cross-module property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.docking.genotype import genotype_length
from repro.docking.pose import calc_coords
from repro.reduction import get_reduction_backend
from repro.reduction.matrices import pack_vectors

genes7 = arrays(np.float64, (7,),
                elements=st.floats(min_value=-3.0, max_value=3.0,
                                   allow_nan=False))


class TestPoseInvariants:
    @given(genes7)
    @settings(max_examples=80, deadline=None)
    def test_bond_lengths_invariant(self, genes):
        # build a local ligand (hypothesis can't take fixtures)
        lig = _make_butane()
        coords = calc_coords(lig, genes)
        for i, j in lig.bonds:
            ref = np.linalg.norm(lig.ref_coords[i] - lig.ref_coords[j])
            got = np.linalg.norm(coords[i] - coords[j])
            assert abs(got - ref) < 1e-9

    @given(genes7)
    @settings(max_examples=80, deadline=None)
    def test_root_atom_at_translation(self, genes):
        lig = _make_butane()
        coords = calc_coords(lig, genes)
        np.testing.assert_allclose(coords[0], genes[0:3], atol=1e-9)

    @given(genes7)
    @settings(max_examples=80, deadline=None)
    def test_rigid_group_internal_distances(self, genes):
        """Atoms not separated by any torsion keep their distances."""
        lig = _make_butane()
        coords = calc_coords(lig, genes)
        # atoms 0,1,2 form the rigid root group
        for i in (0, 1):
            for j in range(i + 1, 3):
                ref = np.linalg.norm(lig.ref_coords[i] - lig.ref_coords[j])
                got = np.linalg.norm(coords[i] - coords[j])
                assert abs(got - ref) < 1e-9

    @given(genes7, genes7)
    @settings(max_examples=50, deadline=None)
    def test_deterministic(self, g1, g2):
        lig = _make_butane()
        np.testing.assert_array_equal(calc_coords(lig, g1),
                                      calc_coords(lig, g1))
        if not np.array_equal(g1, g2):
            pass  # different genes may or may not give different poses


def _make_butane():
    from repro.docking import Ligand, TorsionBond
    coords = np.array([
        [0.0, 0.0, 0.0], [1.5, 0.0, 0.0], [2.25, 1.3, 0.0],
        [3.75, 1.3, 0.0], [4.5, 2.6, 0.0]])
    return Ligand("b", ["C", "C", "C", "OA", "HD"], coords,
                  np.array([0.02, 0.01, 0.0, -0.3, 0.2]),
                  [(0, 1), (1, 2), (2, 3), (3, 4)],
                  [TorsionBond(1, 2, (3, 4))])


class TestReductionInvariants:
    @given(st.integers(min_value=1, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_pack_preserves_every_vector(self, n):
        rng = np.random.default_rng(n)
        vecs = rng.normal(size=(n, 4)).astype(np.float32)
        tiles = pack_vectors(vecs)
        # total content preserved (padding is zero)
        assert tiles.sum(dtype=np.float64) == \
            np.float32(0) + vecs.sum(dtype=np.float64)
        # element multiset preserved
        assert sorted(tiles.ravel()[np.abs(tiles.ravel()) > 0]) == \
            sorted(vecs.ravel()[np.abs(vecs.ravel()) > 0])

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_exact_backend_permutation_invariant(self, seed):
        rng = np.random.default_rng(seed)
        vecs = rng.normal(size=(1, 64, 4)).astype(np.float32)
        perm = rng.permutation(64)
        b = get_reduction_backend("exact")
        np.testing.assert_allclose(b.reduce4(vecs),
                                   b.reduce4(vecs[:, perm]), atol=1e-4)

    @given(st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=40, deadline=None)
    def test_tcec_scale_equivariance_power_of_two(self, _):
        """Scaling inputs by a power of two scales TCEC outputs exactly."""
        rng = np.random.default_rng(5)
        vecs = rng.normal(size=(1, 100, 4)).astype(np.float32)
        b = get_reduction_backend("tcec-tf32")
        base = b.reduce4(vecs)
        scaled = b.reduce4(vecs * np.float32(4.0))
        np.testing.assert_allclose(scaled, base * 4.0, rtol=1e-6)


class TestGenotypeLength:
    @given(st.integers(min_value=0, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_length_formula(self, n_rot):
        class FakeLigand:
            pass
        lig = FakeLigand()
        lig.n_rot = n_rot
        assert genotype_length(lig) == 6 + n_rot
