"""Tests for pose kinematics, AD4 energy terms, grids and scoring."""

import numpy as np
import pytest

from repro.docking import ScoringFunction, calc_coords, rmsd
from repro.docking.energy import (
    ECLAMP,
    GRADCLAMP,
    build_pair_tables,
    dielectric,
    dielectric_derivative,
    intra_contributions,
    vdw_pair_coefficients,
)
from repro.docking.genotype import genotype_length
from repro.docking.grids import OUT_OF_BOX_PENALTY
from repro.docking.rmsd import heavy_atom_mask


class TestPose:
    def test_identity_genotype_recovers_reference(self, butane_like):
        g = np.zeros(genotype_length(butane_like))
        coords = calc_coords(butane_like, g)
        # root atom lands at the translation genes (origin)
        np.testing.assert_allclose(coords[0], [0, 0, 0], atol=1e-12)
        # bond lengths preserved
        for i, j in butane_like.bonds:
            ref = np.linalg.norm(butane_like.ref_coords[i]
                                 - butane_like.ref_coords[j])
            got = np.linalg.norm(coords[i] - coords[j])
            assert got == pytest.approx(ref, rel=1e-12)

    def test_translation_gene_moves_root(self, butane_like):
        g = np.zeros(genotype_length(butane_like))
        g[0:3] = [1.0, -2.0, 3.0]
        coords = calc_coords(butane_like, g)
        np.testing.assert_allclose(coords[0], [1.0, -2.0, 3.0], atol=1e-12)

    def test_torsion_moves_only_subtree(self, butane_like):
        g0 = np.zeros(genotype_length(butane_like))
        g1 = g0.copy()
        g1[6] = 1.2    # the single torsion
        c0 = calc_coords(butane_like, g0)
        c1 = calc_coords(butane_like, g1)
        np.testing.assert_allclose(c0[:3], c1[:3], atol=1e-12)  # 0,1,2 fixed
        assert np.linalg.norm(c0[3] - c1[3]) > 0.1
        assert np.linalg.norm(c0[4] - c1[4]) > 0.1

    def test_torsion_preserves_bond_lengths(self, butane_like):
        rng = np.random.default_rng(0)
        g = np.zeros((8, genotype_length(butane_like)))
        g[:, 3:6] = rng.normal(size=(8, 3))
        g[:, 6] = rng.uniform(-np.pi, np.pi, 8)
        coords = calc_coords(butane_like, g)
        for i, j in butane_like.bonds:
            ref = np.linalg.norm(butane_like.ref_coords[i]
                                 - butane_like.ref_coords[j])
            got = np.linalg.norm(coords[:, i] - coords[:, j], axis=-1)
            np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_batched_matches_single(self, butane_like):
        rng = np.random.default_rng(1)
        g = rng.normal(size=(5, genotype_length(butane_like)))
        batch = calc_coords(butane_like, g)
        for k in range(5):
            np.testing.assert_allclose(batch[k],
                                       calc_coords(butane_like, g[k]),
                                       atol=1e-12)

    def test_wrong_genotype_length(self, butane_like):
        with pytest.raises(ValueError, match="genotype length"):
            calc_coords(butane_like, np.zeros(5))

    def test_full_turn_torsion_is_identity(self, butane_like):
        g0 = np.zeros(genotype_length(butane_like))
        g1 = g0.copy()
        g1[6] = 2 * np.pi
        np.testing.assert_allclose(calc_coords(butane_like, g0),
                                   calc_coords(butane_like, g1), atol=1e-9)


class TestEnergyTerms:
    def test_dielectric_limits(self):
        # Mehler-Solmajer: ~epsilon of water at long range, small at contact
        assert dielectric(np.array([50.0]))[0] == pytest.approx(78.4, abs=1.0)
        assert dielectric(np.array([0.5]))[0] < 10.0

    def test_dielectric_derivative_finite_difference(self):
        r = np.linspace(1.0, 12.0, 40)
        fd = (dielectric(r + 1e-6) - dielectric(r - 1e-6)) / 2e-6
        np.testing.assert_allclose(dielectric_derivative(r), fd, rtol=1e-4)

    def test_vdw_minimum_at_rij(self):
        c, d, m = vdw_pair_coefficients(4.0, 0.15, 4.0, 0.15, hbond=False)
        assert m == 6
        r = 4.0
        e_min = c / r ** 12 - d / r ** m
        assert e_min == pytest.approx(-0.15, rel=1e-12)
        # derivative zero at the minimum
        de = -12 * c / r ** 13 + m * d / r ** (m + 1)
        assert de == pytest.approx(0.0, abs=1e-12)

    def test_hbond_1210_minimum(self):
        c, d, m = vdw_pair_coefficients(0, 0, 0, 0, hbond=True,
                                        rij_hb=1.9, epsij_hb=5.0)
        assert m == 10
        e_min = c / 1.9 ** 12 - d / 1.9 ** 10
        assert e_min == pytest.approx(-5.0, rel=1e-12)

    def test_pair_tables(self, butane_like):
        t = build_pair_tables(butane_like)
        assert t.n_pairs == butane_like.n_intra == 1
        # pair (0=C, 4=HD): not donor-acceptor (C is not an acceptor)
        assert t.m[0] == 6

    def test_intra_energy_and_derivative(self, butane_like):
        t = build_pair_tables(butane_like)
        rng = np.random.default_rng(2)
        g = rng.normal(size=(4, genotype_length(butane_like))) * 0.5
        coords = calc_coords(butane_like, g)
        e, de = intra_contributions(t, coords)
        assert e.shape == (4, 1) and de.shape == (4, 1)
        # numerical check of dE/dr along the pair axis
        delta = coords[:, t.i[0]] - coords[:, t.j[0]]
        r = np.linalg.norm(delta, axis=-1)
        eps = 1e-6
        for k in range(4):
            d_unit = delta[k] / r[k]
            cp = coords[k].copy()
            cp[t.i[0]] += eps * d_unit
            ep, _ = intra_contributions(t, cp[None])
            cm = coords[k].copy()
            cm[t.i[0]] -= eps * d_unit
            em, _ = intra_contributions(t, cm[None])
            fd = (ep[0, 0] - em[0, 0]) / (2 * eps)
            assert de[k, 0] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_clash_clamping(self, butane_like):
        t = build_pair_tables(butane_like)
        coords = np.zeros((1, 5, 3))       # every atom on top of each other
        e, de = intra_contributions(t, coords)
        assert np.all(e <= ECLAMP)
        assert np.all(np.abs(de) <= GRADCLAMP)


class TestGrids:
    def test_box_bounds(self, small_maps):
        np.testing.assert_allclose(small_maps.box_lo, [-8, -8, -8])
        np.testing.assert_allclose(small_maps.box_hi, [8, 8, 8])

    def test_type_index_missing_type(self, small_maps):
        with pytest.raises(ValueError, match="no grid map"):
            small_maps.type_index(["Br"])

    def test_interpolation_exact_at_nodes(self, small_maps, butane_like):
        """At a grid node the interpolant equals the node value."""
        node = small_maps.origin + small_maps.spacing * np.array([10, 12, 14])
        coords = node[None, None, :]
        t_idx = small_maps.type_index(["C"])
        e = small_maps.interatom_energy(
            coords, t_idx, np.zeros(1), np.zeros(1), np.zeros(1))
        c_map = small_maps.type_names.index("C")
        assert e[0, 0] == pytest.approx(
            small_maps.affinity[c_map, 10, 12, 14], rel=1e-10)

    def test_gradient_matches_finite_difference(self, small_maps):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-5, 5, size=(1, 6, 3))
        t_idx = small_maps.type_index(["C"] * 6)
        q = rng.normal(0, 0.2, 6)
        sp = rng.normal(0, 0.01, 6)
        vol = np.abs(rng.normal(20, 5, 6))
        e, g = small_maps.interatom_energy(pts, t_idx, q, sp, vol,
                                           with_gradient=True)
        eps = 1e-6
        for axis in range(3):
            shift = np.zeros(3)
            shift[axis] = eps
            ep = small_maps.interatom_energy(pts + shift, t_idx, q, sp, vol)
            em = small_maps.interatom_energy(pts - shift, t_idx, q, sp, vol)
            fd = (ep - em) / (2 * eps)
            np.testing.assert_allclose(g[..., axis], fd, rtol=1e-4, atol=1e-5)

    def test_out_of_box_penalty(self, small_maps):
        t_idx = small_maps.type_index(["C"])
        inside = np.array([[[0.0, 0.0, 0.0]]])
        outside = np.array([[[12.0, 0.0, 0.0]]])   # 4 Å beyond the box
        zeros = np.zeros(1)
        e_in = small_maps.interatom_energy(inside, t_idx, zeros, zeros, zeros)
        e_out = small_maps.interatom_energy(outside, t_idx, zeros, zeros, zeros)
        assert e_out[0, 0] > e_in[0, 0] + OUT_OF_BOX_PENALTY * 15.9

    def test_out_of_box_gradient_points_inward(self, small_maps):
        t_idx = small_maps.type_index(["C"])
        outside = np.array([[[12.0, 0.0, 0.0]]])
        zeros = np.zeros(1)
        _, g = small_maps.interatom_energy(outside, t_idx, zeros, zeros,
                                           zeros, with_gradient=True)
        assert g[0, 0, 0] > 0.0   # dE/dx > 0 -> move -x (inward) to reduce

    def test_nonfinite_coords_survive(self, small_maps):
        t_idx = small_maps.type_index(["C"])
        bad = np.array([[[np.nan, 0.0, 0.0]]])
        zeros = np.zeros(1)
        e = small_maps.interatom_energy(bad, t_idx, zeros, zeros, zeros)
        assert np.isfinite(e[0, 0]) and e[0, 0] > 1e5


class TestScoring:
    def test_score_shape_and_finiteness(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        rng = np.random.default_rng(4)
        g = rng.normal(size=(10, genotype_length(butane_like)))
        s = sf.score(g)
        assert s.shape == (10,)
        assert np.all(np.isfinite(s))

    def test_torsional_penalty(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        assert sf.torsional_penalty == pytest.approx(0.2983 * 1)

    def test_components_sum_to_total(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        comp = sf.score_components(np.zeros(genotype_length(butane_like)))
        assert comp["total"] == pytest.approx(
            comp["inter"] + comp["intra"] + comp["torsional"], rel=1e-9)

    def test_score_deterministic(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        g = np.zeros((1, genotype_length(butane_like)))
        np.testing.assert_array_equal(sf.score(g), sf.score(g))


class TestRmsd:
    def test_zero_for_identical(self):
        c = np.random.default_rng(5).normal(size=(7, 3))
        assert rmsd(c, c) == 0.0

    def test_translation_distance(self):
        c = np.zeros((4, 3))
        shifted = c + np.array([3.0, 0.0, 0.0])
        assert rmsd(shifted, c) == pytest.approx(3.0)

    def test_batched(self):
        rng = np.random.default_rng(6)
        native = rng.normal(size=(5, 3))
        poses = np.stack([native, native + 1.0])
        out = rmsd(poses, native)
        assert out.shape == (2,)
        assert out[0] == 0.0
        assert out[1] == pytest.approx(np.sqrt(3.0))

    def test_heavy_atom_mask(self):
        mask = heavy_atom_mask(["C", "HD", "OA", "H"])
        np.testing.assert_array_equal(mask, [True, False, True, False])

    def test_mask_selects_atoms(self):
        c = np.zeros((3, 3))
        pose = c.copy()
        pose[2] += 10.0                       # only atom 2 moved
        mask = np.array([True, True, False])
        assert rmsd(pose, c, mask) == 0.0

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="incompatible"):
            rmsd(np.zeros((3, 3)), np.zeros((4, 3)))


class TestSmoothing:
    def _tables(self, butane_like):
        from repro.docking.energy import build_pair_tables
        return build_pair_tables(butane_like)

    def test_flat_at_optimum(self, butane_like):
        """Inside the smoothing band the energy is the well minimum and the
        derivative vanishes."""
        import numpy as np
        from repro.docking.energy import intra_contributions
        t = self._tables(butane_like)
        r_opt = float((12.0 * t.c[0] / (t.m[0] * t.d[0]))
                      ** (1.0 / (12.0 - t.m[0])))
        coords = np.zeros((1, 5, 3))
        coords[0, 4, 0] = r_opt - 0.2        # pair (0,4) inside the band,
        e_s, de_s = intra_contributions(t, coords, smooth=True)
        coords2 = np.zeros((1, 5, 3))        # on the steep repulsive side
        coords2[0, 4, 0] = r_opt
        e_min, _ = intra_contributions(t, coords2, smooth=False)
        # vdW part flattened to the minimum (elec/desolv still vary mildly)
        assert abs(e_s[0, 0] - e_min[0, 0]) < 0.02
        # the steep repulsive slope is removed; only elec/desolv remain
        _, de_raw = intra_contributions(t, coords, smooth=False)
        assert abs(de_s[0, 0]) < 0.3 * abs(de_raw[0, 0])

    def test_far_distances_shifted_by_half_width(self, butane_like):
        import numpy as np
        from repro.docking.energy import (SMOOTH_HALF_WIDTH,
                                          intra_contributions)
        t = self._tables(butane_like)
        coords = np.zeros((1, 5, 3))
        coords[0, 4, 0] = 8.0
        e_s, _ = intra_contributions(t, coords, smooth=True)
        coords2 = np.zeros((1, 5, 3))
        coords2[0, 4, 0] = 8.0 - SMOOTH_HALF_WIDTH
        e_ref, _ = intra_contributions(t, coords2, smooth=False)
        # vdW evaluated at r - hw; elec/desolv at r -> compare vdW piece by
        # subtracting the non-vdW parts computed at the native distances
        assert e_s[0, 0] == pytest.approx(e_ref[0, 0], abs=0.01)

    def test_scoring_function_smooth_flag(self, butane_like, small_maps):
        import numpy as np
        from repro.docking import ScoringFunction
        from repro.docking.genotype import genotype_length
        sf_raw = ScoringFunction(butane_like, small_maps)
        sf_sm = ScoringFunction(butane_like, small_maps, smooth=True)
        rng = np.random.default_rng(8)
        g = rng.normal(size=(6, genotype_length(butane_like))) * 0.5
        s_raw = sf_raw.score(g)
        s_sm = sf_sm.score(g)
        assert not np.allclose(s_raw, s_sm)   # smoothing changes scores
        assert np.all(np.isfinite(s_sm))
