"""Tests for the analysis layer: success, E50, Amdahl, runtimes, speedups."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RuntimeModel,
    SuccessCriteria,
    aggregate_speedups,
    estimate_e50,
    evaluate_run,
    predicted_speedup,
    speedup_table,
)
from repro.analysis.amdahl import effective_fraction
from repro.analysis.speedup import ConfigKey, geometric_mean
from repro.analysis.tables import format_scatter, format_table
from repro.search.lga import LGAResult
from repro.simt.costmodel import KernelWorkload


class TestAmdahl:
    def test_equation6_table4_values(self):
        """Equation (6) as printed; the f=0/0.2/1.0 rows of Table 4 follow
        it exactly.  (The paper's own f=0.9 cells do NOT satisfy the printed
        equation — 1/(0.9/8 + 0.1) = 4.71, not 3.55 — see EXPERIMENTS.md;
        we reproduce the equation, not the inconsistent cells.)"""
        assert predicted_speedup(0.0, 8.0) == 1.0
        assert predicted_speedup(0.2, 8.0) == pytest.approx(1.21, abs=0.005)
        assert predicted_speedup(0.2, 7.4) == pytest.approx(1.20, abs=0.01)
        assert predicted_speedup(0.2, 15.0) == pytest.approx(1.25, abs=0.03)
        assert predicted_speedup(1.0, 8.0) == pytest.approx(8.00)
        assert predicted_speedup(1.0, 7.4) == pytest.approx(7.40)
        assert predicted_speedup(1.0, 15.0) == pytest.approx(15.0)
        assert predicted_speedup(0.9, 8.0) == pytest.approx(4.71, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_speedup(1.5, 8.0)
        with pytest.raises(ValueError):
            predicted_speedup(0.5, 0.0)

    def test_effective_fraction(self):
        assert effective_fraction(0.15) == pytest.approx(0.135)

    def test_speedup_table_structure(self):
        rows = speedup_table()
        assert [r["f"] for r in rows] == [0.0, 0.2, 0.9, 1.0]
        assert rows[3]["A100"] == pytest.approx(8.0)
        assert rows[3]["B200"] == pytest.approx(15.0)

    def test_monotone_in_f(self):
        s = [predicted_speedup(f, 7.4) for f in np.linspace(0, 1, 11)]
        assert all(a < b for a, b in zip(s, s[1:]))


class TestE50:
    def test_all_succeed_at_same_time(self):
        est = estimate_e50([100, 100, 100, 100], budgets=1000)
        assert est.n_success == 4
        # exponential MLE: lambda = 4/400, E50 = ln2 * 100
        assert est.e50 == pytest.approx(math.log(2) * 100)

    def test_none_succeed(self):
        est = estimate_e50([None, None], budgets=500)
        assert math.isinf(est.e50)
        assert est.success_rate == 0.0

    def test_censoring_increases_e50(self):
        full = estimate_e50([100, 100, 100, 100], budgets=1000)
        censored = estimate_e50([100, 100, None, None], budgets=1000)
        assert censored.e50 > full.e50

    def test_mixed_budgets(self):
        est = estimate_e50([50, None], budgets=[200, 400])
        lam = 1 / (50 + 400)
        assert est.e50 == pytest.approx(math.log(2) / lam)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            estimate_e50([], budgets=10)
        with pytest.raises(ValueError, match="length"):
            estimate_e50([1, 2], budgets=[10])
        with pytest.raises(ValueError, match="exceeds budget"):
            estimate_e50([50], budgets=10)

    @given(st.lists(st.integers(min_value=1, max_value=999), min_size=1,
                    max_size=30))
    @settings(max_examples=50)
    def test_e50_positive_and_bounded_below_by_mean_factor(self, times):
        est = estimate_e50(list(times), budgets=1000)
        assert est.e50 > 0
        # with no censoring, E50 = ln2 * mean
        assert est.e50 == pytest.approx(math.log(2) * np.mean(times))


class TestSuccess:
    def _result(self, history, case, budget=1000):
        glen = case.native_genotype.size
        genos = [np.zeros(glen) for _ in history]
        return LGAResult(
            best_genotype=np.zeros(glen),
            best_score=history[-1][1] if history else np.inf,
            evals_used=budget, generations=5,
            history=[(e, s, g) for (e, s), g in zip(history, genos)])

    def test_first_success_score(self, case_small):
        gmin = case_small.global_min_score
        res = self._result([(100, gmin + 5.0), (300, gmin + 0.5)], case_small)
        out = evaluate_run(res, case_small)
        assert out.first_success_score == 300

    def test_no_success(self, case_small):
        gmin = case_small.global_min_score
        res = self._result([(100, gmin + 5.0)], case_small)
        out = evaluate_run(res, case_small)
        assert out.first_success_score is None

    def test_rmsd_success_with_native_genotype(self, case_small):
        res = LGAResult(
            best_genotype=case_small.native_genotype,
            best_score=case_small.global_min_score,
            evals_used=500, generations=3,
            history=[(200, case_small.global_min_score,
                      case_small.native_genotype.copy())])
        out = evaluate_run(res, case_small)
        assert out.first_success_rmsd == 200
        assert out.best_rmsd < 0.5

    def test_criteria_override(self, case_small):
        gmin = case_small.global_min_score
        res = self._result([(100, gmin + 1.5)], case_small)
        loose = SuccessCriteria(score_tolerance=2.0)
        assert evaluate_run(res, case_small, loose).first_success_score == 100


class TestRuntimeModel:
    WL = KernelWorkload(n_rotlist=400, n_atoms=50, n_intra=300, n_genes=21,
                        n_blocks=3000)

    def test_us_per_eval_magnitude(self):
        """The paper reports ~0.8-0.9 µs/eval on the A100 at block 64."""
        m = RuntimeModel("A100", 64, "baseline", self.WL)
        v = m.us_per_eval(ls_evals=2_250_000, ga_evals=250_000,
                          generations=50)
        assert 0.2 < v < 3.0

    def test_tcec_faster(self):
        mb = RuntimeModel("A100", 64, "baseline", self.WL)
        mt = RuntimeModel("A100", 64, "tcec-tf32", self.WL)
        args = dict(ls_evals=1_000_000, ga_evals=100_000, generations=50)
        assert mt.runtime_seconds(**args) < mb.runtime_seconds(**args)

    def test_sample_jitter_seeded(self):
        m = RuntimeModel("A100", 64, "baseline", self.WL)
        r1 = m.sample(1000, 100, 5, np.random.default_rng(7))
        r2 = m.sample(1000, 100, 5, np.random.default_rng(7))
        assert r1.seconds == r2.seconds
        r3 = m.sample(1000, 100, 5, np.random.default_rng(8))
        assert r3.seconds != r1.seconds

    def test_sample_metric(self):
        m = RuntimeModel("H100", 128, "tcec-tf32", self.WL)
        s = m.sample(900, 100, 5, np.random.default_rng(0))
        assert s.n_evals == 1000
        assert s.us_per_eval == pytest.approx(s.seconds * 1e6 / 1000)

    def test_zero_evals_rejected(self):
        m = RuntimeModel("A100", 64, "baseline", self.WL)
        with pytest.raises(ValueError):
            m.us_per_eval(0, 0, 0)

    def test_zero_eval_sample_is_nan(self):
        """Regression: a zero-eval sample (e.g. a dry run priced through
        RuntimeSample directly) used to raise ZeroDivisionError."""
        from repro.analysis.runtime import RuntimeSample
        s = RuntimeSample(seconds=0.5, n_evals=0)
        assert math.isnan(s.us_per_eval)
        assert RuntimeSample(seconds=0.1, n_evals=1000).us_per_eval \
            == pytest.approx(100.0)


class TestSpeedupAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_aggregate(self):
        ref = ConfigKey("A100", 64, "baseline")
        tc = ConfigKey("A100", 64, "tcec-tf32")
        h = ConfigKey("H100", 64, "baseline")
        data = {
            ref: {"a": 1.0, "b": 2.0},
            tc: {"a": 0.8, "b": 1.6},
            h: {"a": 0.5, "b": 1.0},
        }
        rows = aggregate_speedups(data, ref)
        by_cfg = {(r["device"], r["block"], r["backend"]): r for r in rows}
        assert by_cfg[("A100", 64, "baseline")]["absolute_speedup"] == \
            pytest.approx(1.0)
        assert by_cfg[("A100", 64, "tcec-tf32")]["absolute_speedup"] == \
            pytest.approx(1.25)
        assert by_cfg[("A100", 64, "tcec-tf32")]["relative_speedup"] == \
            pytest.approx(1.25)
        assert by_cfg[("H100", 64, "baseline")]["absolute_speedup"] == \
            pytest.approx(2.0)

    def test_missing_reference(self):
        with pytest.raises(ValueError, match="reference"):
            aggregate_speedups({}, ConfigKey("A100", 64, "baseline"))


class TestTables:
    def test_format_table(self):
        out = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.1}],
                           title="T")
        assert "T" in out and "a" in out and "2.50" in out

    def test_format_empty(self):
        assert "(empty)" in format_table([])

    def test_format_scatter(self):
        out = format_scatter([("7cpa", 100.0, 150.0)], "ref", "tc")
        assert "7cpa" in out and "1.50" in out
