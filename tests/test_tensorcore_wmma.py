"""Tests for the wmma fragment API (Listing 1 semantics)."""

import numpy as np
import pytest

from repro.tensorcore import wmma
from repro.tensorcore.mma import mma


class TestFragments:
    def test_roles_and_shapes(self):
        for role in (wmma.matrix_a, wmma.matrix_b, wmma.accumulator):
            frag = wmma.fragment(role)
            assert frag.shape == (16, 16)
            assert frag.data.shape == (16, 16)

    def test_unknown_role_raises(self):
        with pytest.raises(ValueError, match="unknown fragment role"):
            wmma.fragment("matrix_x")

    def test_accumulator_default_fp32(self):
        frag = wmma.fragment(wmma.accumulator)
        assert frag.fmt.name == "fp32"

    def test_fill_fragment_quantises_operands(self):
        frag = wmma.fragment(wmma.matrix_a, fmt="fp16")
        wmma.fill_fragment(frag, 1.0 + 2 ** -20)   # not representable in FP16
        np.testing.assert_array_equal(frag.data,
                                      np.full((16, 16), 1.0, np.float32))

    def test_fill_fragment_accumulator_keeps_fp32(self):
        frag = wmma.fragment(wmma.accumulator)
        v = 1.0 + 2 ** -20
        wmma.fill_fragment(frag, v)
        np.testing.assert_array_equal(frag.data,
                                      np.full((16, 16), np.float32(v)))


class TestLoadStore:
    def test_col_major_round_trip(self):
        rng = np.random.default_rng(3)
        buf = rng.normal(size=256).astype(np.float32)
        frag = wmma.fragment(wmma.accumulator)
        wmma.load_matrix_sync(frag, buf, 16, wmma.col_major)
        out = np.zeros(256, dtype=np.float32)
        wmma.store_matrix_sync(out, frag, 16, wmma.mem_col_major)
        np.testing.assert_array_equal(out, buf)

    def test_row_vs_col_major_transpose(self):
        buf = np.arange(256, dtype=np.float32)
        fr = wmma.fragment(wmma.accumulator)
        fc = wmma.fragment(wmma.accumulator)
        wmma.load_matrix_sync(fr, buf, 16, wmma.row_major)
        wmma.load_matrix_sync(fc, buf, 16, wmma.col_major)
        np.testing.assert_array_equal(fr.data, fc.data.T)

    def test_leading_dimension_stride(self):
        # a 16x16 tile embedded in a 32-wide buffer
        big = np.arange(32 * 16, dtype=np.float32)
        frag = wmma.fragment(wmma.accumulator)
        wmma.load_matrix_sync(frag, big, 32, wmma.col_major)
        expect = big[: 32 * 16].reshape(16, 32)[:, :16].T
        np.testing.assert_array_equal(frag.data, expect)

    def test_buffer_too_small_raises(self):
        frag = wmma.fragment(wmma.accumulator)
        with pytest.raises(ValueError, match="buffer too small"):
            wmma.load_matrix_sync(frag, np.zeros(100, np.float32), 16)

    def test_store_requires_accumulator(self):
        frag = wmma.fragment(wmma.matrix_a, fmt="fp16")
        with pytest.raises(ValueError, match="accumulator"):
            wmma.store_matrix_sync(np.zeros(256, np.float32), frag, 16)


class TestMmaSync:
    def _frags(self, fmt="fp16"):
        return (wmma.fragment(wmma.matrix_a, fmt=fmt),
                wmma.fragment(wmma.matrix_b, fmt=fmt),
                wmma.fragment(wmma.accumulator),
                wmma.fragment(wmma.accumulator))

    def test_matches_raw_mma(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(16, 16)).astype(np.float32)
        b = rng.normal(size=(16, 16)).astype(np.float32)
        fa, fb, fc, fd = self._frags("tf32")
        wmma.load_matrix_sync(fa, a.T.ravel(), 16, wmma.col_major)
        wmma.load_matrix_sync(fb, b.T.ravel(), 16, wmma.col_major)
        wmma.fill_fragment(fc, 0.0)
        wmma.mma_sync(fd, fa, fb, fc)
        expect = mma(a, b, np.zeros((16, 16), np.float32), in_format="tf32")
        np.testing.assert_array_equal(fd.data, expect)

    def test_operand_format_mismatch_raises(self):
        fa = wmma.fragment(wmma.matrix_a, fmt="fp16")
        fb = wmma.fragment(wmma.matrix_b, fmt="tf32")
        fc = wmma.fragment(wmma.accumulator)
        fd = wmma.fragment(wmma.accumulator)
        with pytest.raises(ValueError, match="format mismatch"):
            wmma.mma_sync(fd, fa, fb, fc)

    def test_role_validation(self):
        fa, fb, fc, fd = self._frags()
        with pytest.raises(ValueError, match="mma_sync operands"):
            wmma.mma_sync(fd, fb, fa, fc)  # swapped roles

    def test_listing1_reduction_step(self):
        """The exact code shape of the paper's Listing 1: V = A x P + V."""
        rng = np.random.default_rng(7)
        data = rng.normal(size=256).astype(np.float32)
        frag_a = wmma.fragment(wmma.matrix_a, fmt="tf32")
        frag_p = wmma.fragment(wmma.matrix_b, fmt="tf32")
        frag_v = wmma.fragment(wmma.accumulator)
        wmma.load_matrix_sync(frag_a, data, 16, wmma.col_major)
        wmma.fill_fragment(frag_p, 1.0)
        wmma.fill_fragment(frag_v, 0.0)
        wmma.mma_sync(frag_v, frag_a, frag_p, frag_v)
        tmp = np.zeros(256, dtype=np.float32)
        wmma.store_matrix_sync(tmp, frag_v, 16, wmma.mem_col_major)
        # every column of V holds the row sums of A
        a_mat = data.reshape(16, 16).T
        row_sums = a_mat.astype(np.float64).sum(axis=1)
        abs_sums = np.abs(a_mat).astype(np.float64).sum(axis=1)
        got = tmp.reshape(16, 16).T
        np.testing.assert_allclose(got[:, 0], row_sums,
                                   atol=float(np.max(abs_sums)) * 2 ** -10)
        for col in range(16):
            np.testing.assert_array_equal(got[:, col], got[:, 0])


class TestHalfAccumulator:
    def test_half_accumulator_fragment(self):
        """Listing 1 bottom: frag_V declared as half — results quantise to
        the FP16 lattice after every issue."""
        frag = wmma.fragment(wmma.accumulator, fmt="fp16")
        assert frag.fmt.name == "fp16"

    def test_invalid_accumulator_format(self):
        import pytest
        with pytest.raises(ValueError, match="fp32 or fp16"):
            wmma.fragment(wmma.accumulator, fmt="tf32")

    def test_half_accumulator_loses_precision(self):
        rng = np.random.default_rng(21)
        a = rng.normal(size=(16, 16)).astype(np.float32) * 30
        fa = wmma.fragment(wmma.matrix_a, fmt="fp16")
        fp = wmma.fragment(wmma.matrix_b, fmt="fp16")
        v32 = wmma.fragment(wmma.accumulator)            # fp32
        v16 = wmma.fragment(wmma.accumulator, fmt="fp16")
        wmma.load_matrix_sync(fa, a.T.ravel(), 16, wmma.col_major)
        wmma.fill_fragment(fp, 1.0)
        wmma.fill_fragment(v32, 0.0)
        wmma.fill_fragment(v16, 0.0)
        wmma.mma_sync(v32, fa, fp, v32)
        wmma.mma_sync(v16, fa, fp, v16)
        from repro.fpemu import quantize
        np.testing.assert_array_equal(v16.data,
                                      quantize(v16.data, "fp16"))
        # fp32 accumulator keeps bits the half fragment drops
        assert np.any(v32.data != v16.data)
