"""Tests for repro.robustness: fault detection and guarded reductions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reduction.api import (
    ExactReduction,
    SimtReduction,
    TcFp16Reduction,
    TcecReduction,
    WarpShuffleReduction,
    get_reduction_backend,
)
from repro.robustness import (
    FP16_MAX,
    FaultLedger,
    GuardedReduction,
    NumericalFaultError,
    fault_mask,
)

BACKENDS = [SimtReduction, WarpShuffleReduction, TcFp16Reduction,
            TcecReduction, ExactReduction]


def blocks(n_blocks=6, n=16, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (scale * rng.standard_normal((n_blocks, n, 4))).astype(np.float32)


class _CorruptOutput:
    """Wrapper corrupting one lane of one output block (test double)."""

    def __init__(self, inner, block, lane, value):
        self.inner = inner
        self.block, self.lane, self.value = block, lane, value
        self.cost_key = inner.cost_key
        self.name = f"corrupt({inner.name})"

    def reduce4(self, vectors):
        out = np.array(self.inner.reduce4(vectors), copy=True)
        out[self.block, self.lane] = self.value
        return out


class TestFaultMask:
    def test_clean_blocks_pass(self):
        out = np.ones((5, 4), dtype=np.float32)
        assert not fault_mask(out).any()

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_nonfinite_detected(self, bad):
        out = np.ones((5, 4), dtype=np.float32)
        out[2, 1] = bad
        mask = fault_mask(out)
        assert mask.tolist() == [False, False, True, False, False]

    def test_overflow_needs_opt_in(self):
        out = np.full((2, 4), 70000.0, dtype=np.float32)
        assert not fault_mask(out).any()
        assert fault_mask(out, check_overflow=True).all()

    def test_overflow_limit_is_inclusive(self):
        # FP16 saturation pins sums exactly at the limit; >= must catch it
        out = np.array([[FP16_MAX, 0, 0, 0], [-FP16_MAX, 0, 0, 0],
                        [FP16_MAX - 1, 0, 0, 0]], dtype=np.float32)
        assert fault_mask(out, check_overflow=True).tolist() == [
            True, True, False]

    def test_multidim_blocks(self):
        out = np.zeros((3, 5, 4), dtype=np.float32)
        out[1, 4, 0] = np.nan
        mask = fault_mask(out)
        assert mask.shape == (3, 5)
        assert mask.sum() == 1 and mask[1, 4]


class TestFaultLedger:
    def test_counters_and_rate(self):
        led = FaultLedger()
        assert math.isnan(led.fault_rate)
        led.record_checked(100)
        led.record_faults(3)
        led.record_faults(2, site="injected")
        led.record_recovered(4)
        led.record_unrecoverable(1)
        led.record_consumer_zeroed(7)
        assert led.blocks_faulty == 5
        assert led.fault_rate == pytest.approx(0.05)
        assert led.by_site == {"reduce4": 3, "injected": 2}
        s = led.summary()
        assert s["blocks_recovered"] == 4
        assert s["blocks_unrecoverable"] == 1
        assert s["consumer_zeroed"] == 7

    def test_zero_faults_not_recorded_by_site(self):
        led = FaultLedger()
        led.record_faults(0)
        assert led.by_site == {} and led.blocks_faulty == 0

    def test_merge(self):
        a, b = FaultLedger(), FaultLedger()
        a.record_checked(10)
        a.record_faults(1)
        b.record_checked(20)
        b.record_faults(2, site="grid")
        b.record_consumer_zeroed(3)
        a.merge(b)
        assert a.blocks_checked == 30
        assert a.blocks_faulty == 3
        assert a.by_site == {"reduce4": 1, "grid": 2}
        assert a.consumer_zeroed == 3


class TestGuardedReduction:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            GuardedReduction(SimtReduction(), policy="panic")

    def test_clean_passthrough(self):
        v = blocks()
        guard = GuardedReduction(SimtReduction(), policy="raise")
        np.testing.assert_array_equal(guard.reduce4(v),
                                      SimtReduction().reduce4(v))
        assert guard.ledger.blocks_checked == v.shape[0]
        assert guard.ledger.blocks_faulty == 0

    def test_naming_and_cost_follow_inner(self):
        guard = GuardedReduction(TcFp16Reduction())
        assert guard.name == "guarded(tc-fp16)"
        assert guard.cost_key == "tc-fp16"

    def test_overflow_check_auto_enabled_for_fp16_accumulator(self):
        assert GuardedReduction(TcFp16Reduction()).check_overflow
        assert not GuardedReduction(SimtReduction()).check_overflow
        assert not GuardedReduction(TcecReduction()).check_overflow
        assert GuardedReduction(SimtReduction(),
                                check_overflow=True).check_overflow

    def test_raise_policy(self):
        inner = _CorruptOutput(SimtReduction(), 1, 2, np.nan)
        guard = GuardedReduction(inner, policy="raise")
        with pytest.raises(NumericalFaultError) as exc:
            guard.reduce4(blocks())
        assert exc.value.n_blocks == 1
        assert guard.ledger.blocks_faulty == 1

    def test_ignore_policy_audits_only(self):
        inner = _CorruptOutput(SimtReduction(), 0, 0, np.inf)
        guard = GuardedReduction(inner, policy="ignore")
        out = guard.reduce4(blocks())
        assert np.isinf(out[0, 0])
        assert guard.ledger.blocks_faulty == 1
        assert guard.ledger.blocks_recovered == 0

    def test_degrade_repairs_with_exact_fallback(self):
        v = blocks()
        inner = _CorruptOutput(SimtReduction(), 3, 1, np.nan)
        guard = GuardedReduction(inner, policy="degrade")
        out = guard.reduce4(v)
        clean = SimtReduction().reduce4(v)
        np.testing.assert_array_equal(out, clean)
        assert guard.ledger.blocks_recovered == 1
        assert guard.ledger.blocks_unrecoverable == 0

    def test_degrade_fp16_overflow(self):
        # fp16 accumulator saturates on these sums; the guard must both
        # detect the saturated blocks and restore FP32 totals
        v = blocks(scale=9000.0)
        guard = GuardedReduction(TcFp16Reduction(), policy="degrade")
        out = guard.reduce4(v)
        assert guard.ledger.blocks_faulty > 0
        assert np.all(np.isfinite(out))
        clean = SimtReduction().reduce4(v)
        mask = fault_mask(TcFp16Reduction().reduce4(v), check_overflow=True)
        np.testing.assert_array_equal(out[mask], clean[mask])

    def test_degrade_cannot_repair_corrupt_inputs(self):
        # NaN in the *inputs* survives any reduction order: the fallback
        # re-reduction fails too and the ledger records it as unrecoverable
        v = blocks()
        v[2, 5, 0] = np.nan
        guard = GuardedReduction(SimtReduction(), policy="degrade")
        out = guard.reduce4(v)
        assert np.isnan(out[2, 0])
        assert guard.ledger.blocks_unrecoverable == 1
        assert guard.ledger.blocks_recovered == 0

    def test_shared_ledger_accumulates(self):
        led = FaultLedger()
        g1 = GuardedReduction(SimtReduction(), ledger=led)
        g2 = GuardedReduction(TcFp16Reduction(), ledger=led)
        g1.reduce4(blocks())
        g2.reduce4(blocks())
        assert led.blocks_checked == 12

    def test_guarded_spec_in_backend_registry(self):
        guard = get_reduction_backend("guarded:tc-fp16", policy="ignore")
        assert isinstance(guard, GuardedReduction)
        assert guard.inner.name == "tc-fp16"
        assert guard.policy == "ignore"
        with pytest.raises(ValueError, match="unknown reduction backend"):
            get_reduction_backend("guarded:nope")


class TestGuardedProperties:
    """Hypothesis properties over all back-ends and fault positions."""

    @settings(max_examples=40, deadline=None)
    @given(backend=st.sampled_from(BACKENDS),
           n_blocks=st.integers(1, 8),
           block=st.integers(0, 7),
           lane=st.integers(0, 3),
           bad=st.sampled_from([float("nan"), float("inf"), float("-inf")]),
           seed=st.integers(0, 2 ** 16))
    def test_injected_nonfinite_always_detected(self, backend, n_blocks,
                                                block, lane, bad, seed):
        """A NaN/Inf in any output block of any back-end is always caught."""
        block = block % n_blocks
        inner = _CorruptOutput(backend(), block, lane, bad)
        guard = GuardedReduction(inner, policy="ignore")
        guard.reduce4(blocks(n_blocks=n_blocks, seed=seed))
        assert guard.ledger.blocks_faulty >= 1
        assert guard.ledger.blocks_checked == n_blocks

    @settings(max_examples=40, deadline=None)
    @given(backend=st.sampled_from(BACKENDS),
           n_blocks=st.integers(1, 8),
           block=st.integers(0, 7),
           lane=st.integers(0, 3),
           seed=st.integers(0, 2 ** 16))
    def test_degrade_matches_exact_backend_bitwise(self, backend, n_blocks,
                                                   block, lane, seed):
        """Repaired blocks equal the FP32 SIMT fallback bit-for-bit, and
        untouched blocks keep the wrapped back-end's own totals."""
        block = block % n_blocks
        v = blocks(n_blocks=n_blocks, seed=seed)
        inner = _CorruptOutput(backend(), block, lane, float("nan"))
        guard = GuardedReduction(inner, policy="degrade",
                                 check_overflow=False)
        out = guard.reduce4(v)
        expect = np.array(backend().reduce4(v), copy=True)
        expect[block] = SimtReduction().reduce4(v[block])
        np.testing.assert_array_equal(out, expect)
        assert guard.ledger.blocks_recovered == 1
