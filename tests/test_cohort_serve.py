"""Serve-layer cohort tests: packing, execution, screen integration.

The queue packs compatible :class:`DockingJob` submissions into
:class:`CohortJob` batches (``pack_cohorts``), the pool runs them through
the lock-step engine (``execute_cohort``), and ``VirtualScreen.run``
exposes the whole path via ``cohort_size``.  The contract throughout is
that packing is invisible in the results: every member payload is
bit-identical to running that member's job alone, and caches/manifests
key results by the member's own content hash.
"""

import json

import pytest

from repro.core import DockingConfig, DockingEngine
from repro.search.lga import LGAConfig
from repro.serve import VirtualScreen, seed_from_spec, spawn_seed
from repro.serve.pool import execute_cohort, execute_job
from repro.serve.queue import (CohortJob, DockingJob, _spec_size_key,
                               pack_cohorts)
from repro.testcases import get_test_case

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))
OTHER = DockingConfig(backend="baseline",
                      lga=LGAConfig(pop_size=8, max_evals=200, max_gens=6,
                                    ls_iters=5, ls_rate=0.25))


def case_job(name, i=0, n_runs=2, config=TINY, priority=0, label=None):
    return DockingJob(spec={"kind": "case", "case": name}, config=config,
                      n_runs=n_runs, seed=spawn_seed(5, i),
                      priority=priority, label=label or f"{name}/{i}")


class TestCohortJob:
    def test_needs_at_least_one_member(self):
        with pytest.raises(ValueError, match="at least one member"):
            CohortJob(jobs=())

    def test_members_must_share_config_and_runs(self):
        with pytest.raises(ValueError, match="share config"):
            CohortJob(jobs=(case_job("1u4d", 0),
                            case_job("1xoz", 1, config=OTHER)))
        with pytest.raises(ValueError, match="share config"):
            CohortJob(jobs=(case_job("1u4d", 0, n_runs=2),
                            case_job("1xoz", 1, n_runs=3)))

    def test_priority_is_min_of_members(self):
        cohort = CohortJob(jobs=(case_job("1u4d", 0, priority=5),
                                 case_job("1xoz", 1, priority=-2)))
        assert cohort.priority == -2

    def test_id_hashes_ordered_member_ids_not_labels(self):
        a, b = case_job("1u4d", 0), case_job("1xoz", 1)
        forward = CohortJob(jobs=(a, b))
        # the same ligands packed in a different order are a different
        # work unit (the lock-step budget interleaves differently) ...
        assert forward.job_id != CohortJob(jobs=(b, a)).job_id
        # ... but labels are transport, not identity
        assert forward.job_id == CohortJob(jobs=(a, b), label="x").job_id

    def test_roundtrips_through_dict(self):
        cohort = CohortJob(jobs=(case_job("1u4d", 0), case_job("1xoz", 1)),
                           label="pair")
        back = CohortJob.from_dict(
            json.loads(json.dumps(cohort.to_dict())))
        assert back.job_id == cohort.job_id
        assert back.label == "pair"
        assert [j.job_id for j in back.jobs] \
            == [j.job_id for j in cohort.jobs]


class TestPackCohorts:
    def test_passthrough_when_disabled_or_singleton(self):
        jobs = [case_job("1u4d", i) for i in range(3)]
        assert pack_cohorts(jobs, 1) == jobs
        assert pack_cohorts(jobs[:1], 4) == jobs[:1]

    def test_chunks_with_singleton_leftover(self):
        jobs = [case_job("1u4d", i) for i in range(5)]
        packed = pack_cohorts(jobs, 2)
        assert [type(p).__name__ for p in packed] \
            == ["CohortJob", "CohortJob", "DockingJob"]
        member_ids = set()
        for p in packed:
            member_ids |= ({m.job_id for m in p.jobs}
                           if isinstance(p, CohortJob) else {p.job_id})
        assert member_ids == {j.job_id for j in jobs}

    def test_incompatible_jobs_never_share_a_cohort(self):
        jobs = [case_job("1u4d", 0), case_job("1xoz", 1),
                case_job("1yv3", 2, config=OTHER),
                case_job("1owe", 3, config=OTHER),
                case_job("7cpa", 4, n_runs=3), case_job("7cpa", 5, n_runs=3)]
        packed = pack_cohorts(jobs, 4)
        assert all(isinstance(p, CohortJob) for p in packed)
        assert sorted(len(p.jobs) for p in packed) == [2, 2, 2]
        for p in packed:
            # CohortJob.__post_init__ would also have raised on a mix
            assert len({(json.dumps(m.config.to_dict(), sort_keys=True),
                         m.n_runs) for m in p.jobs}) == 1

    def test_members_sorted_by_ligand_size(self):
        # deliberately shuffled sizes: packing sorts by (atoms, torsions)
        # so each cohort holds similarly-sized ligands (low pad_ratio)
        names = ["7cpa", "1u4d", "1xoz", "1yv3", "1owe", "7cpa"]
        packed = pack_cohorts([case_job(n, i)
                               for i, n in enumerate(names)], 3)
        assert all(isinstance(p, CohortJob) for p in packed)
        keys = [k for p in packed
                for k in [_spec_size_key(m.spec) for m in p.jobs]]
        assert keys == sorted(keys)


class TestExecuteCohort:
    def test_member_payloads_bit_equal_to_solo_jobs(self):
        jobs = [case_job(n, i)
                for i, n in enumerate(("1u4d", "1xoz", "7cpa"))]
        got = execute_cohort(CohortJob(jobs=tuple(jobs)))
        assert got["cohort_size"] == 3
        assert [m["job_id"] for m in got["members"]] \
            == [j.job_id for j in jobs]
        for job, member in zip(jobs, got["members"]):
            want = execute_job(job)
            solo = dict(want["result"])
            packed = dict(member["payload"]["result"])
            # wall time is measurement, not result
            solo.pop("runtime_seconds")
            packed.pop("runtime_seconds")
            assert packed == solo, job.label

    def test_history_flag_passes_through(self):
        jobs = (case_job("1u4d", 0), case_job("1xoz", 1))
        got = execute_cohort(CohortJob(jobs=jobs), include_history=True)
        runs = got["members"][0]["payload"]["result"]["runs"]
        assert all(r.get("history") for r in runs)


class TestScreenCohort:
    def test_cohort_screen_matches_plain_screen(self):
        names = ["1u4d", "1xoz", "1yv3", "1owe"]
        plain = VirtualScreen(cases=names, config=TINY, n_runs=2,
                              seed=7).run(workers=0)
        packed = VirtualScreen(cases=names, config=TINY, n_runs=2,
                               seed=7).run(workers=0, cohort_size=4)
        assert packed.stats["jobs_failed"] == 0
        strip = [[{k: v for k, v in hit.items() if k != "wall_seconds"}
                  for hit in rep.ranking] for rep in (plain, packed)]
        assert strip[0] == strip[1]

    def test_cohort_screen_matches_sequential_engine(self):
        names = ["1u4d", "1xoz", "1yv3", "1owe"]
        report = VirtualScreen(cases=names, config=TINY, n_runs=2,
                               seed=7).run(workers=2, cohort_size=2)
        assert report.stats["jobs_failed"] == 0
        expected = {}
        for i, name in enumerate(names):
            expected[name] = DockingEngine(get_test_case(name), TINY).dock(
                n_runs=2, seed=seed_from_spec(spawn_seed(7, i))).best_score
        got = {hit["label"]: hit["best_score"] for hit in report.ranking}
        assert got == expected

    def test_cohort_resume_sees_through_packing(self, tmp_path):
        """Results are keyed per member: a cohort_size=1 manifest fully
        satisfies a cohort_size=4 resume (zero new work) and vice versa."""
        names = ["1u4d", "1xoz", "1yv3", "1owe"]
        manifest = tmp_path / "manifest.json"
        first = VirtualScreen(cases=names, config=TINY, n_runs=2,
                              seed=3).run(workers=0, manifest=manifest,
                                          cohort_size=4)
        assert first.stats["jobs_completed"] == 4
        resumed = VirtualScreen(cases=names, config=TINY, n_runs=2,
                                seed=3).run(workers=0, manifest=manifest,
                                            resume=True, cohort_size=1)
        assert resumed.stats["jobs_completed"] == 0
        assert resumed.stats["jobs_cached"] == 4
