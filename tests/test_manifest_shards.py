"""Tests for sharded NDJSON manifests: logs, screens, merge tool."""

import json
import sys
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.core import DockingConfig
from repro.io import pack_rlig, write_maps, write_pdbqt
from repro.search.lga import LGAConfig
from repro.serve import ShardedManifest, VirtualScreen, shard_for
from repro.serve.manifest import atomic_write_json, load_manifest_jobs
from repro.testcases import get_test_case

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tools.merge_manifests import merge, rank  # noqa: E402

TINY = DockingConfig(backend="baseline",
                     lga=LGAConfig(pop_size=8, max_evals=300, max_gens=6,
                                   ls_iters=5, ls_rate=0.25))


def _jid(i):
    """Realistic content-hash job id (uniform leading hex digits)."""
    import hashlib
    return hashlib.sha256(f"job-{i}".encode()).hexdigest()[:16]


def _rec(i, score, status="ok"):
    return {"job_id": _jid(i), "label": f"lig{i}", "status": status,
            "result": {"runs": [{"best_score": score}],
                       "total_evals": 100}}


@pytest.fixture()
def ligand_library(case_small, tmp_path):
    fld = write_maps(case_small.maps, tmp_path, stem="receptor")
    rng = np.random.default_rng(0)
    paths = []
    for i in range(4):
        path = tmp_path / f"lig{i}.pdbqt"
        jitter = rng.normal(0, 0.05,
                            size=case_small.ligand.ref_coords.shape)
        write_pdbqt(case_small.ligand, path,
                    coords=case_small.ligand.ref_coords + jitter)
        paths.append(str(path))
    return fld, paths


class TestShardedLog:
    def test_append_partitions_by_content_hash(self, tmp_path):
        sm = ShardedManifest(tmp_path / "m", n_shards=4)
        for i in range(32):
            shard = sm.append(_rec(i, float(i)))
            assert shard == shard_for(_jid(i), 4)
        sm.close()
        used = [s for s in range(4) if sm.shard_path(s).is_file()]
        assert len(used) > 1            # hash actually spreads records

    def test_load_is_last_record_wins(self, tmp_path):
        sm = ShardedManifest(tmp_path / "m", n_shards=2)
        sm.append(_rec(1, -1.0))
        sm.append(_rec(2, -2.0))
        sm.append(_rec(1, -9.0, status="cached"))   # supersedes
        sm.close()
        jobs = sm.load()
        assert len(jobs) == 2
        assert jobs[_jid(1)]["status"] == "cached"
        assert jobs[_jid(1)]["result"]["runs"][0]["best_score"] == -9.0

    def test_compact_squeezes_superseded_records(self, tmp_path):
        sm = ShardedManifest(tmp_path / "m", n_shards=1)
        for _ in range(3):
            sm.append(_rec(7, -1.0))
        sm.close()
        assert len(sm.shard_path(0).read_text().splitlines()) == 3
        before = sm.load()
        sm.compact()
        assert len(sm.shard_path(0).read_text().splitlines()) == 1
        assert sm.load() == before

    def test_torn_tail_is_skipped(self, tmp_path):
        sm = ShardedManifest(tmp_path / "m", n_shards=1)
        sm.append(_rec(1, -1.0))
        sm.close()
        with open(sm.shard_path(0), "a") as fh:
            fh.write('{"job_id": "feed", "stat')     # crash mid-append
        jobs = ShardedManifest(tmp_path / "m").load()
        assert list(jobs) == [_jid(1)]

    def test_meta_pins_shard_count_across_reopen(self, tmp_path):
        ShardedManifest(tmp_path / "m", n_shards=3).close()
        sm = ShardedManifest(tmp_path / "m", n_shards=16)
        assert sm.n_shards == 3          # existing partition wins
        with pytest.raises(ValueError, match="n_shards"):
            ShardedManifest(tmp_path / "new")

    def test_atomic_write_json_is_thread_safe(self, tmp_path):
        """Regression: a PID-only tmp suffix collided between the
        gateway's shard threads — one thread's ``os.replace`` consumed
        the shared tmp and the other's raised ``FileNotFoundError``,
        dead-lettering its job."""
        path = tmp_path / "m.json"
        errors = []

        def hammer(tag):
            try:
                for i in range(200):
                    atomic_write_json(path, {"tag": tag, "i": i},
                                      indent=None)
            except OSError as exc:      # pragma: no cover - regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert json.loads(path.read_text())["i"] == 199

    def test_load_manifest_jobs_dispatches_on_disk_format(self, tmp_path):
        sm = ShardedManifest(tmp_path / "m", n_shards=2)
        sm.append(_rec(5, -5.0))
        sm.close()
        assert list(load_manifest_jobs(tmp_path / "m")) == [_jid(5)]

        single = tmp_path / "single.json"
        single.write_text(json.dumps(
            {"version": 1, "jobs": {"aa": _rec(0, -1.0)}}))
        assert list(load_manifest_jobs(single)) == ["aa"]


class TestScreenSharded:
    def test_sharded_ranking_equals_single_file(self, ligand_library,
                                                tmp_path):
        fld, ligs = ligand_library
        single = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)
        ref = single.run(workers=0, manifest=tmp_path / "single.json",
                         manifest_shards=0)

        sharded = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                                n_runs=2, seed=3)
        rep = sharded.run(workers=0, manifest=tmp_path / "shards",
                          manifest_shards=2)
        assert (tmp_path / "shards" / "meta.json").is_file()
        assert rep.ranking == ref.ranking

    def test_sharded_resume_skips_completed_work(self, ligand_library,
                                                 tmp_path):
        fld, ligs = ligand_library
        manifest = tmp_path / "shards"
        first = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                              n_runs=1, seed=5)
        first.run(workers=0, manifest=manifest, manifest_shards=2)

        resumed = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                                n_runs=1, seed=5)
        rep = resumed.run(workers=0, manifest=manifest, resume=True)
        assert rep.stats["jobs_completed"] == 0
        assert rep.stats["jobs_cached"] == 4

        # and a third resume still does nothing ("cached" stays terminal)
        again = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                              n_runs=1, seed=5)
        rep2 = again.run(workers=0, manifest=manifest, resume=True)
        assert rep2.stats["jobs_completed"] == 0
        assert rep2.stats["jobs_cached"] == 4

    def test_single_file_resume_rejects_shard_request(self, ligand_library,
                                                      tmp_path):
        fld, ligs = ligand_library
        manifest = tmp_path / "m.json"
        VirtualScreen(fld=fld, ligands=ligs, config=TINY, n_runs=1,
                      seed=5).run(workers=0, manifest=manifest,
                                  manifest_shards=0)
        with pytest.raises(ValueError, match="single-file manifest"):
            VirtualScreen(fld=fld, ligands=ligs, config=TINY, n_runs=1,
                          seed=5).run(workers=0, manifest=manifest,
                                      manifest_shards=4)

    def test_auto_threshold_switches_format(self, ligand_library,
                                            tmp_path, monkeypatch):
        import repro.serve.screen as screen_mod
        monkeypatch.setattr(screen_mod, "SHARD_AUTO_THRESHOLD", 2)
        fld, ligs = ligand_library
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=1, seed=5)
        screen.run(workers=0, manifest=tmp_path / "auto")
        assert ShardedManifest.is_sharded(tmp_path / "auto")


class TestMergeTool:
    def test_merge_matches_screen_ranking(self, ligand_library, tmp_path):
        fld, ligs = ligand_library
        screen = VirtualScreen(fld=fld, ligands=ligs, config=TINY,
                               n_runs=2, seed=3)
        rep = screen.run(workers=0, manifest=tmp_path / "shards",
                         manifest_shards=2)
        merged = merge([tmp_path / "shards"])
        assert merged["ranking"] == rep.ranking
        assert merged["stats"]["jobs_total"] == 4

    def test_later_inputs_win_and_rank_sorts(self, tmp_path):
        a = ShardedManifest(tmp_path / "a", n_shards=2)
        a.append(_rec(1, -1.0))
        a.append(_rec(2, -5.0))
        a.close()
        b = ShardedManifest(tmp_path / "b", n_shards=3)
        b.append(_rec(1, -8.0))          # supersedes a's record
        b.append(_rec(3, -2.0, status="failed"))   # unranked
        b.close()
        doc = merge([tmp_path / "a", tmp_path / "b"])
        assert doc["stats"]["jobs_total"] == 3
        scores = [r["best_score"] for r in doc["ranking"]]
        assert scores == [-8.0, -5.0]
        assert [r["rank"] for r in doc["ranking"]] == [1, 2]
        assert rank(doc["jobs"]) == doc["ranking"]

    def test_cli_writes_merged_manifest(self, tmp_path, capsys):
        from tools.merge_manifests import main as merge_main
        sm = ShardedManifest(tmp_path / "m", n_shards=2)
        for i in range(6):
            sm.append(_rec(i, float(-i)))
        sm.close()
        out = tmp_path / "merged.json"
        assert merge_main([str(tmp_path / "m"), "--out", str(out),
                           "--top", "3"]) == 0
        doc = json.loads(out.read_text())
        assert len(doc["ranking"]) == 6
        assert doc["version"] == 1
        printed = capsys.readouterr().out
        assert "6 jobs" in printed

    def test_unreadable_manifest_is_an_error(self, tmp_path, capsys):
        from tools.merge_manifests import main as merge_main
        assert merge_main([str(tmp_path / "nope")]) == 1
        assert "merge_manifests" in capsys.readouterr().err


class TestScreenCLI:
    def test_pack_then_screen_with_store_and_shards(self, case_small,
                                                    tmp_path, capsys):
        fld = write_maps(case_small.maps, tmp_path, stem="receptor")
        rng = np.random.default_rng(1)
        pdbqt_dir = tmp_path / "ligs"
        pdbqt_dir.mkdir()
        for i in range(3):
            jitter = rng.normal(0, 0.05,
                                size=case_small.ligand.ref_coords.shape)
            write_pdbqt(case_small.ligand, pdbqt_dir / f"l{i}.pdbqt",
                        coords=case_small.ligand.ref_coords + jitter)
        pack = tmp_path / "lib.rlig"
        assert main(["pack", str(pdbqt_dir), "--out", str(pack)]) == 0
        assert "Packed 3 ligands" in capsys.readouterr().out

        argv = ["screen", "-ffile", str(fld), "--library", str(pack),
                "--workers", "0", "-nrun", "1", "--evals", "200",
                "--pop", "8", "--lsit", "4", "--tensor", "baseline",
                "--manifest", str(tmp_path / "shards"),
                "--manifest-shards", "2",
                "--store", str(tmp_path / "store")]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "3 new, 0 cached" in out
        assert ShardedManifest.is_sharded(tmp_path / "shards")
        assert (tmp_path / "store" / "maps").is_dir()

        assert main(argv + ["--resume"]) == 0
        assert "0 new, 3 cached" in capsys.readouterr().out

    def test_library_and_ligands_are_exclusive(self, tmp_path, capsys):
        assert main(["screen", "-ffile", "r.fld", "-l", "a.pdbqt",
                     "--library", "lib.rlig"]) == 2
