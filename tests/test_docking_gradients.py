"""Tests for the gradient kernel — the seven reductions and their accuracy."""

import numpy as np
import pytest

from repro.docking import GradientCalculator, ScoringFunction
from repro.docking.genotype import genotype_length
from repro.docking.gradients import GENE_GRADIENT_CLAMP
from repro.reduction import TcecReduction


class TestGradientCorrectness:
    def _setup(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        return sf, GradientCalculator(sf, "exact")

    def test_energy_matches_scoring(self, butane_like, small_maps):
        """The reduced energy lane equals the scoring function's value (up
        to reduction rounding)."""
        sf, gc = self._setup(butane_like, small_maps)
        rng = np.random.default_rng(0)
        g = rng.normal(size=(6, genotype_length(butane_like))) * 0.5
        e_grad, _ = gc(g)
        e_sf = sf.score(g)
        np.testing.assert_allclose(e_grad, e_sf, rtol=1e-4, atol=1e-3)

    def test_gradient_matches_finite_difference(self, butane_like,
                                                small_maps):
        sf, gc = self._setup(butane_like, small_maps)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, genotype_length(butane_like))) * 0.4
        _, grad = gc(x)
        if np.any(np.abs(grad) >= GENE_GRADIENT_CLAMP * 0.99):
            pytest.skip("clamped point; FD comparison not meaningful")
        eps = 1e-5
        fd = np.zeros_like(grad)
        for k in range(x.shape[1]):
            xp, xm = x.copy(), x.copy()
            xp[0, k] += eps
            xm[0, k] -= eps
            fd[0, k] = (sf.score(xp)[0] - sf.score(xm)[0]) / (2 * eps)
        np.testing.assert_allclose(grad, fd, rtol=0.05, atol=0.05)

    def test_gradient_7cpa_finite_difference(self, case_7cpa):
        """Same check on the realistic case (translation/orientation/
        torsion blocks all present)."""
        sf = case_7cpa.scoring()
        gc = GradientCalculator(sf, "exact")
        rng = np.random.default_rng(3)
        x = case_7cpa.native_genotype[None, :] \
            + rng.normal(0, 0.15, (1, case_7cpa.native_genotype.size))
        _, grad = gc(x)
        if np.any(np.abs(grad) >= GENE_GRADIENT_CLAMP * 0.99):
            pytest.skip("clamped point; FD comparison not meaningful")
        eps = 1e-5
        fd = np.zeros_like(grad)
        for k in range(x.shape[1]):
            xp, xm = x.copy(), x.copy()
            xp[0, k] += eps
            xm[0, k] -= eps
            fd[0, k] = (sf.score(xp)[0] - sf.score(xm)[0]) / (2 * eps)
        err = np.abs(grad - fd) / (np.abs(fd) + 1e-2)
        assert float(np.max(err)) < 0.05

    def test_gradient_clamped(self, butane_like, small_maps):
        _, gc = self._setup(butane_like, small_maps)
        # a pose far outside the box has a huge out-of-box pull
        x = np.zeros((1, genotype_length(butane_like)))
        x[0, 0] = 500.0
        _, grad = gc(x)
        assert np.all(np.abs(grad) <= GENE_GRADIENT_CLAMP)

    def test_batched_matches_single(self, butane_like, small_maps):
        _, gc = self._setup(butane_like, small_maps)
        rng = np.random.default_rng(2)
        g = rng.normal(size=(4, genotype_length(butane_like))) * 0.3
        e_b, gr_b = gc(g)
        for k in range(4):
            e_s, gr_s = gc(g[k][None])
            assert e_b[k] == pytest.approx(e_s[0], rel=1e-6)
            np.testing.assert_allclose(gr_b[k], gr_s[0], rtol=1e-6)


class TestBackendEffects:
    def test_backend_changes_energy_slightly(self, case_7cpa):
        """Different reduction back-ends give different (but close) energies
        away from clashes — and identical gradients structure."""
        sf = case_7cpa.scoring()
        rng = np.random.default_rng(4)
        x = case_7cpa.native_genotype[None, :] + rng.normal(0, 0.1, (1, 21))
        e = {}
        for backend in ("exact", "baseline", "tcec-tf32", "tc-fp16"):
            e[backend], _ = GradientCalculator(sf, backend)(x)
        assert e["baseline"][0] == pytest.approx(e["exact"][0], abs=1e-3)
        assert e["tcec-tf32"][0] == pytest.approx(e["exact"][0], abs=1e-3)
        # FP16 path deviates measurably more
        fp16_err = abs(e["tc-fp16"][0] - e["exact"][0])
        tcec_err = abs(e["tcec-tf32"][0] - e["exact"][0])
        assert fp16_err > tcec_err

    def test_backend_instance_accepted(self, butane_like, small_maps):
        sf = ScoringFunction(butane_like, small_maps)
        gc = GradientCalculator(sf, TcecReduction())
        assert gc.backend.name == "tcec-tf32"

    def test_fp16_gradient_error_larger(self, case_7cpa):
        """Per-gene gradient error ordering: fp16 >> tcec (Figure 1 vs 3
        at the kernel level)."""
        sf = case_7cpa.scoring()
        rng = np.random.default_rng(5)
        x = case_7cpa.native_genotype[None, :] + rng.normal(0, 0.3, (1, 21))
        _, g_exact = GradientCalculator(sf, "exact")(x)
        _, g_fp16 = GradientCalculator(sf, "tc-fp16")(x)
        _, g_tcec = GradientCalculator(sf, "tcec-tf32")(x)
        # a non-finite fp16 gradient (accumulator overflow) is the extreme
        # form of the error — count it as a huge deviation
        diff16 = np.abs(g_fp16 - g_exact)
        err16 = float(np.max(np.nan_to_num(diff16, nan=1e9, posinf=1e9)))
        err_ec = float(np.max(np.abs(g_tcec - g_exact)))
        assert np.all(np.isfinite(g_tcec))
        assert err_ec <= err16

    def test_translation_gradient_is_atom_sum(self, butane_like, small_maps):
        """Gtrans equals the sum of per-atom gradients (exact backend)."""
        sf = ScoringFunction(butane_like, small_maps)
        gc = GradientCalculator(sf, "exact")
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, genotype_length(butane_like))) * 0.3
        from repro.docking.pose import calc_coords
        coords = calc_coords(butane_like, x)
        _, g_atoms = gc.atom_gradients(coords)
        _, grad = gc(x)
        expect = g_atoms.sum(axis=1)[0]
        clamped = np.clip(expect, -GENE_GRADIENT_CLAMP, GENE_GRADIENT_CLAMP)
        np.testing.assert_allclose(grad[0, 0:3], clamped, rtol=1e-4)
