"""Tests for the reduction back-ends (Equations 1-4 and the SIMT baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.reduction import (
    SimtReduction,
    TcFp16Reduction,
    TcecReduction,
    build_p_matrix,
    build_q_matrix,
    get_reduction_backend,
    pack_vectors,
    simt_tree_reduce,
    unpack_result,
)
from repro.reduction.api import ExactReduction


class TestMatrices:
    def test_p_is_all_ones(self):
        p = build_p_matrix()
        assert p.shape == (16, 16)
        np.testing.assert_array_equal(p, np.ones((16, 16), np.float32))

    def test_q_block_identity_structure(self):
        q = build_q_matrix()
        i4 = np.eye(4, dtype=np.float32)
        for br in range(4):
            for bc in range(4):
                np.testing.assert_array_equal(
                    q[4 * br: 4 * br + 4, 4 * bc: 4 * bc + 4], i4)

    def test_pack_layout_matches_equation2(self):
        """Column c holds vectors 4c..4c+3 component-first."""
        n = 64
        vecs = np.zeros((n, 4), dtype=np.float32)
        for k in range(n):
            vecs[k] = [k + 0.0, k + 0.25, k + 0.5, k + 0.75]  # x,y,z,e tags
        a = pack_vectors(vecs)[0]
        # A[4j+i, c] = component i of vector 4c+j
        for c in range(16):
            for j in range(4):
                for i in range(4):
                    k = 4 * c + j
                    assert a[4 * j + i, c] == vecs[k, i]

    def test_pack_pads_with_zeros(self):
        vecs = np.ones((10, 4), dtype=np.float32)
        a = pack_vectors(vecs)
        assert a.shape == (1, 16, 16)
        assert a.sum() == 40.0

    def test_pack_multiple_tiles(self):
        vecs = np.ones((130, 4), dtype=np.float32)
        a = pack_vectors(vecs)
        assert a.shape == (3, 16, 16)

    def test_pack_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(\.\.\., n, 4\)"):
            pack_vectors(np.ones((10, 3), np.float32))

    def test_equation_pipeline_exact_in_fp64(self):
        """A x P then Q x V reproduces the four sums exactly in fp64."""
        rng = np.random.default_rng(1)
        vecs = rng.normal(size=(64, 4)).astype(np.float32)
        a = pack_vectors(vecs)[0].astype(np.float64)
        v = a @ build_p_matrix().astype(np.float64)
        w = build_q_matrix().astype(np.float64) @ v
        got = unpack_result(w)
        np.testing.assert_allclose(got, vecs.astype(np.float64).sum(axis=0),
                                   rtol=1e-12)

    def test_unpack_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="16, 16"):
            unpack_result(np.zeros((8, 8)))


class TestSimtTree:
    def test_matches_exact_sum_closely(self):
        rng = np.random.default_rng(2)
        v = rng.normal(size=500).astype(np.float32)
        got = simt_tree_reduce(v)
        np.testing.assert_allclose(got, v.astype(np.float64).sum(), rtol=1e-5)

    def test_power_of_two_input(self):
        v = np.arange(256, dtype=np.float32)
        assert simt_tree_reduce(v) == v.sum()

    def test_empty_input(self):
        out = simt_tree_reduce(np.zeros((3, 0), np.float32))
        np.testing.assert_array_equal(out, np.zeros(3, np.float32))

    def test_single_element(self):
        assert simt_tree_reduce(np.array([7.0], np.float32)) == 7.0

    def test_axis_argument(self):
        rng = np.random.default_rng(3)
        v = rng.normal(size=(4, 100)).astype(np.float32)
        np.testing.assert_array_equal(simt_tree_reduce(v, axis=-1),
                                      simt_tree_reduce(v.T, axis=0))

    def test_tree_order_differs_from_sequential(self):
        """The tree sum is a *different* FP32 rounding than naive left-fold —
        documents that the baseline's numerics are order-dependent."""
        rng = np.random.default_rng(4)
        v = (rng.normal(size=1023) * 1e3).astype(np.float32)
        tree = float(simt_tree_reduce(v))
        seq = float(np.float32(0.0))
        acc = np.float32(0.0)
        for x in v:
            acc = np.float32(acc + x)
        seq = float(acc)
        exact = float(v.astype(np.float64).sum())
        assert abs(tree - exact) <= abs(seq - exact) * 10  # both close; tree usually closer


class TestBackends:
    def _vectors(self, seed=5, n=300, pop=3, scale=10.0):
        rng = np.random.default_rng(seed)
        return (rng.normal(size=(pop, n, 4)) * scale).astype(np.float32)

    def test_registry(self):
        assert isinstance(get_reduction_backend("baseline"), SimtReduction)
        assert isinstance(get_reduction_backend("tc-fp16"), TcFp16Reduction)
        assert isinstance(get_reduction_backend("tcec-tf32"), TcecReduction)
        assert isinstance(get_reduction_backend("exact"), ExactReduction)

    def test_registry_passthrough(self):
        b = TcecReduction()
        assert get_reduction_backend(b) is b

    def test_registry_unknown(self):
        with pytest.raises(ValueError, match="unknown reduction backend"):
            get_reduction_backend("simd-scan")

    def test_cost_keys(self):
        assert SimtReduction().cost_key == "baseline"
        assert TcFp16Reduction().cost_key == "tc-fp16"
        assert TcecReduction().cost_key == "tcec-tf32"

    @pytest.mark.parametrize("name", ["baseline", "tc-fp16", "tcec-tf32", "exact"])
    def test_shapes(self, name):
        v = self._vectors()
        out = get_reduction_backend(name).reduce4(v)
        assert out.shape == (3, 4)
        assert out.dtype == np.float32

    def test_accuracy_ordering_matches_paper(self):
        """tc-fp16 is the least accurate; tcec-tf32 restores (and here beats)
        the FP32 baseline — the core claim behind Figures 1 and 3."""
        v = self._vectors(n=512)
        exact = v.astype(np.float64).sum(axis=1)
        errs = {}
        for name in ("baseline", "tc-fp16", "tcec-tf32"):
            got = get_reduction_backend(name).reduce4(v)
            errs[name] = np.max(np.abs(got - exact) / (np.abs(exact) + 1e-9))
        assert errs["tc-fp16"] > 10 * errs["baseline"]
        assert errs["tcec-tf32"] <= errs["baseline"] * 2

    def test_fp16_overflow_destroys_reduction(self):
        """Gradient spikes beyond FP16 range (steep vdW clashes) saturate in
        the Schieffer-Peng path but survive TCEC/TF32."""
        v = np.zeros((1, 64, 4), dtype=np.float32)
        v[0, 0, 0] = 1e6
        v[0, 1, 0] = 123.0
        exact = v.astype(np.float64).sum(axis=1)
        fp16 = get_reduction_backend("tc-fp16").reduce4(v)
        tcec = get_reduction_backend("tcec-tf32").reduce4(v)
        assert not np.isclose(fp16[0, 0], exact[0, 0], rtol=1e-3)
        np.testing.assert_allclose(tcec[0, 0], exact[0, 0], rtol=1e-6)

    def test_single_vector(self):
        v = np.array([[[1.0, 2.0, 3.0, 4.0]]], dtype=np.float32)
        for name in ("baseline", "tc-fp16", "tcec-tf32"):
            out = get_reduction_backend(name).reduce4(v)
            np.testing.assert_allclose(out[0], [1, 2, 3, 4], atol=2e-3)


vec_arrays = arrays(np.float32, (97, 4),
                    elements=st.floats(min_value=-50, max_value=50, width=32))


@given(vec_arrays)
@settings(max_examples=30, deadline=None)
def test_tcec_reduction_close_to_exact(vecs):
    exact = vecs.astype(np.float64).sum(axis=0)
    got = TcecReduction().reduce4(vecs)
    scale = np.abs(vecs).sum(axis=0) + 1.0
    assert np.all(np.abs(got - exact) <= scale * 2.0 ** -18)


@given(vec_arrays)
@settings(max_examples=30, deadline=None)
def test_baseline_reduction_close_to_exact(vecs):
    exact = vecs.astype(np.float64).sum(axis=0)
    got = SimtReduction().reduce4(vecs)
    scale = np.abs(vecs).sum(axis=0) + 1.0
    assert np.all(np.abs(got - exact) <= scale * 2.0 ** -16)


class TestWarpShuffle:
    def test_matches_exact_closely(self):
        from repro.reduction.simt_backend import warp_shuffle_reduce
        rng = np.random.default_rng(9)
        v = rng.normal(size=(3, 500)).astype(np.float32)
        got = warp_shuffle_reduce(v)
        exact = v.astype(np.float64).sum(axis=-1)
        np.testing.assert_allclose(got, exact, rtol=1e-5)

    def test_single_warp_matches_tree(self):
        """For exactly 32 values the shuffle butterfly IS the tree."""
        from repro.reduction.simt_backend import warp_shuffle_reduce
        rng = np.random.default_rng(10)
        v = rng.normal(size=32).astype(np.float32)
        assert warp_shuffle_reduce(v) == simt_tree_reduce(v)

    def test_empty(self):
        from repro.reduction.simt_backend import warp_shuffle_reduce
        out = warp_shuffle_reduce(np.zeros((2, 0), np.float32))
        np.testing.assert_array_equal(out, np.zeros(2, np.float32))

    def test_backend_registered(self):
        from repro.reduction.api import WarpShuffleReduction
        b = get_reduction_backend("warp-shuffle")
        assert isinstance(b, WarpShuffleReduction)
        assert b.cost_key == "baseline"
        rng = np.random.default_rng(11)
        vecs = rng.normal(size=(2, 100, 4)).astype(np.float32)
        exact = vecs.astype(np.float64).sum(axis=1)
        np.testing.assert_allclose(b.reduce4(vecs), exact, rtol=1e-4,
                                   atol=1e-4)

    def test_same_accuracy_class_as_baseline(self):
        rng = np.random.default_rng(12)
        vecs = (rng.normal(size=(4, 300, 4)) * 10).astype(np.float32)
        exact = vecs.astype(np.float64).sum(axis=1)
        err_ws = np.max(np.abs(get_reduction_backend("warp-shuffle")
                               .reduce4(vecs) - exact))
        err_tree = np.max(np.abs(get_reduction_backend("baseline")
                                 .reduce4(vecs) - exact))
        assert err_ws < 10 * err_tree + 1e-3
