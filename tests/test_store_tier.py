"""Tests for the disk-backed blob store and the two-tier cache."""

import hashlib
import multiprocessing as mp

import numpy as np
import pytest

from repro.io import read_maps, write_maps
from repro.serve import BlobStore, ContentCache
from repro.serve.cache import load_maps, sizeof
from repro.serve.store import GridMapsCodec, codec_for_key


class TestBlobStore:
    def test_put_get_round_trip(self, tmp_path):
        store = BlobStore(tmp_path / "store")
        arrays = {"a": np.arange(12.0).reshape(3, 4),
                  "b": np.arange(5, dtype=np.int32)}
        meta = {"codec": "unit/v1", "note": "x"}
        assert store.put("maps/" + "ab" * 32, arrays, meta) is True
        got = store.get("maps/" + "ab" * 32)
        assert got is not None
        out, out_meta = got
        assert out_meta == meta
        np.testing.assert_array_equal(out["a"], arrays["a"])
        np.testing.assert_array_equal(out["b"], arrays["b"])

    def test_second_put_is_a_noop(self, tmp_path):
        store = BlobStore(tmp_path / "store")
        key = "maps/" + "cd" * 32
        assert store.put(key, {"a": np.zeros(3)}, {}) is True
        assert store.put(key, {"a": np.ones(3)}, {}) is False
        arrays, _ = store.get(key)
        np.testing.assert_array_equal(arrays["a"], np.zeros(3))

    def test_get_miss_returns_none_and_counts(self, tmp_path):
        store = BlobStore(tmp_path / "store")
        assert store.get("maps/" + "ef" * 32) is None
        assert not store.has("maps/" + "ef" * 32)
        assert store.stats()["get_misses"] == 1

    def test_keys_enumerates_by_kind(self, tmp_path):
        store = BlobStore(tmp_path / "store")
        store.put("maps/" + "aa" * 32, {"x": np.zeros(1)}, {})
        store.put("case/1u4d", {"x": np.zeros(1)}, {})
        assert list(store.keys("maps")) == ["maps/" + "aa" * 32]
        assert sorted(store.keys()) == ["case/1u4d", "maps/" + "aa" * 32]

    @pytest.mark.parametrize("key", ["", "maps/", "/x", "maps/../../etc",
                                     "maps/a b", "maps/.hidden"])
    def test_unsafe_keys_rejected(self, tmp_path, key):
        store = BlobStore(tmp_path / "store")
        with pytest.raises(ValueError, match="unsafe"):
            store.put(key, {"x": np.zeros(1)}, {})

    def test_mmap_reads_are_read_only_views(self, tmp_path):
        store = BlobStore(tmp_path / "store")
        store.put("maps/" + "aa" * 32, {"x": np.arange(4.0)}, {})
        arrays, _ = store.get("maps/" + "aa" * 32)
        assert isinstance(arrays["x"], np.memmap)
        with pytest.raises((ValueError, OSError)):
            arrays["x"][0] = 99.0


class TestGridMapsCodec:
    def test_codec_registry(self):
        assert codec_for_key("maps/" + "aa" * 32) is GridMapsCodec
        assert codec_for_key("ligand/" + "aa" * 32) is None

    def test_round_trip_bit_identical(self, small_maps):
        arrays, meta = GridMapsCodec.encode(small_maps)
        out = GridMapsCodec.decode(arrays, meta)
        for attr in ("affinity", "elec", "desolv_v", "desolv_s"):
            np.testing.assert_array_equal(np.asarray(getattr(out, attr)),
                                          np.asarray(getattr(small_maps,
                                                             attr)))
        np.testing.assert_array_equal(out.origin, small_maps.origin)
        assert out.spacing == small_maps.spacing
        assert out.type_names == small_maps.type_names
        np.testing.assert_array_equal(out.flat_maps, small_maps.flat_maps)


class TestTwoTierCache:
    def test_write_through_then_disk_hit_skips_builder(self, case_small,
                                                       tmp_path):
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        store = BlobStore(tmp_path / "store")

        cold = ContentCache(1 << 26, store=store)
        load_maps(fld, cold)
        assert cold.stats()["disk_misses"] == 1   # store was empty
        assert cold.stats()["disk_writes"] == 1   # ... and populated

        calls = []
        warm = ContentCache(1 << 26, store=store)

        def spy_builder():
            calls.append(1)
            return read_maps(fld)

        from repro.serve.cache import maps_digest
        digest = maps_digest(fld)
        got = warm.get_or_build(f"maps/{digest}", spy_builder)
        assert calls == []                        # served from disk
        assert warm.stats()["disk_hits"] == 1
        golden = read_maps(fld)
        for attr in ("affinity", "elec", "desolv_v", "desolv_s"):
            np.testing.assert_array_equal(np.asarray(getattr(got, attr)),
                                          np.asarray(getattr(golden,
                                                             attr)))

    def test_round_trip_across_processes(self, case_small, tmp_path):
        """A store written by one process serves bit-identical flat grid
        buffers to a spawned process (the worker-pool deployment)."""
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        store_root = tmp_path / "store"
        cache = ContentCache(1 << 26, store=BlobStore(store_root))
        load_maps(fld, cache)

        golden = hashlib.sha256(
            np.ascontiguousarray(read_maps(fld).flat_maps).tobytes()
        ).hexdigest()
        ctx = mp.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = pool.apply(_flat_digest_via_store,
                                (str(fld), str(store_root)))
        assert remote["digest"] == golden
        assert remote["disk_hits"] == 1
        assert remote["parse_spans"] == 0         # no text re-parse

    def test_corrupt_blob_falls_back_to_builder(self, case_small,
                                                tmp_path):
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        store = BlobStore(tmp_path / "store")
        cold = ContentCache(1 << 26, store=store)
        load_maps(fld, cold)
        for npy in (tmp_path / "store").rglob("*.npy"):
            npy.write_bytes(b"garbage")

        warm = ContentCache(1 << 26, store=store)
        got = load_maps(fld, warm)               # must not raise
        assert warm.stats()["disk_misses"] == 1
        np.testing.assert_array_equal(np.asarray(got.affinity),
                                      np.asarray(read_maps(fld).affinity))


class TestFlatMapAccounting:
    def test_lazy_flat_build_stays_within_capacity(self, case_small,
                                                   tmp_path):
        """Regression: ``sizeof`` used to count only the four component
        maps, so building ``flat_maps`` after insert doubled the entry's
        real footprint and ``bytes_used`` silently exceeded
        ``capacity_bytes``."""
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        cache = ContentCache(1 << 26)
        maps = load_maps(fld, cache)
        charged = cache.bytes_used
        component = sum(np.asarray(getattr(maps, a)).nbytes
                        for a in ("affinity", "elec",
                                  "desolv_v", "desolv_s"))
        assert charged >= 2 * component          # flat build pre-charged

        maps.flat_maps                           # materialise lazily
        assert cache.bytes_used == charged       # no unaccounted growth
        assert sizeof(maps) <= charged
        assert cache.bytes_used <= cache.capacity_bytes

    def test_from_flat_instances_charge_flat_only(self, small_maps):
        from repro.docking.grids import GridMaps
        flat = small_maps.flat_maps.copy()
        view_backed = GridMaps.from_flat(
            flat, origin=small_maps.origin, spacing=small_maps.spacing,
            type_names=small_maps.type_names, shape=small_maps.shape)
        # the components are views into flat: charging 2x component
        # bytes would double-count
        assert view_backed.nbytes < 2 * flat.nbytes
        assert view_backed.nbytes >= flat.nbytes


def _flat_digest_via_store(fld: str, store_root: str) -> dict:
    """Spawned-process half of the cross-process round-trip test."""
    from repro.obs import configure
    tracer = configure(None, source="child")
    cache = ContentCache(1 << 26, store=BlobStore(store_root))
    maps = load_maps(fld, cache)
    digest = hashlib.sha256(
        np.ascontiguousarray(maps.flat_maps).tobytes()).hexdigest()
    parse_spans = sum(1 for rec in tracer.records()
                      if rec.get("type") == "span"
                      and rec.get("name", "").startswith("parse."))
    return {"digest": digest,
            "disk_hits": cache.stats()["disk_hits"],
            "parse_spans": parse_spans}
