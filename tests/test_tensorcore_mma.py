"""Tests for the simulated Tensor Core MMA unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.fpemu import quantize
from repro.tensorcore import MMA_K, MMA_M, MMA_N, mma, tc_product


def _rand_tiles(rng, batch=(), scale=1.0):
    a = (rng.normal(size=batch + (MMA_M, MMA_K)) * scale).astype(np.float32)
    b = (rng.normal(size=batch + (MMA_K, MMA_N)) * scale).astype(np.float32)
    c = (rng.normal(size=batch + (MMA_M, MMA_N)) * scale).astype(np.float32)
    return a, b, c


class TestMmaBasics:
    def test_identity_product(self):
        eye = np.eye(16, dtype=np.float32)
        b = np.arange(256, dtype=np.float32).reshape(16, 16)
        out = mma(eye, b, np.zeros((16, 16), np.float32), in_format="tf32")
        np.testing.assert_array_equal(out, b)

    def test_shape_validation(self):
        bad = np.zeros((8, 16), np.float32)
        good = np.zeros((16, 16), np.float32)
        with pytest.raises(ValueError, match="A tile"):
            mma(bad, good, good)
        with pytest.raises(ValueError, match="C tile"):
            mma(good, good, np.zeros((16, 8), np.float32))

    def test_unknown_accumulate_mode(self):
        t = np.zeros((16, 16), np.float32)
        with pytest.raises(ValueError, match="accumulate"):
            mma(t, t, t, accumulate="ru")

    def test_accumulator_not_quantised(self):
        """C stays FP32 even when operands are FP16 — only A/B truncate."""
        a = np.zeros((16, 16), np.float32)
        c = np.full((16, 16), np.float32(1.0 + 2.0 ** -20))
        out = mma(a, a, c, in_format="fp16")
        np.testing.assert_array_equal(out, c)

    def test_batched_matches_loop(self):
        rng = np.random.default_rng(31)
        a, b, c = _rand_tiles(rng, batch=(5,))
        batched = mma(a, b, c, in_format="fp16")
        for i in range(5):
            single = mma(a[i], b[i], c[i], in_format="fp16")
            np.testing.assert_array_equal(batched[i], single)

    def test_error_bounded_by_operand_truncation(self):
        rng = np.random.default_rng(37)
        a, b, c = _rand_tiles(rng)
        out = mma(a, b, c, in_format="tf32")
        exact = a.astype(np.float64) @ b.astype(np.float64) + c
        # K=16 products with <=2^-11 relative operand error
        bound = (np.abs(a) @ np.abs(b) + np.abs(c)) * (2 ** -10) * 3
        assert np.all(np.abs(out - exact) <= bound + 1e-6)


class TestRoundingBehaviour:
    def test_rz_result_at_most_rn_result_in_magnitude(self):
        rng = np.random.default_rng(41)
        a, b, _ = _rand_tiles(rng)
        a = np.abs(a)
        b = np.abs(b)
        c = np.zeros((16, 16), np.float32)
        rz = mma(a, b, c, in_format="fp16", accumulate="rz")
        rn = mma(a, b, c, in_format="fp16", accumulate="rn")
        assert np.all(rz <= rn)

    def test_rz_underestimates_positive_accumulation(self):
        """Chained RZ accumulation of positive tiles drifts low — the bias
        the error-correction scheme removes."""
        rng = np.random.default_rng(101)
        ones_col = np.ones((16, 16), np.float32)
        # full-precision FP32 operands (quantize_inputs=False) make the
        # partial sums non-representable, so the accumulator RZ bites on
        # nearly every add
        small = (rng.random((16, 16)) + 0.5).astype(np.float32)
        acc_rz = np.zeros((16, 16), np.float32)
        acc64 = np.zeros((16, 16), np.float64)
        for _ in range(50):
            acc_rz = mma(small, ones_col, acc_rz, in_format="tf32",
                         quantize_inputs=False)
            acc64 = small.astype(np.float64) @ ones_col + acc64
        assert np.all(acc_rz.astype(np.float64) <= acc64)
        assert np.any(acc_rz.astype(np.float64) < acc64)

    def test_fp16_overflow_saturates_inside_tile(self):
        """Operands beyond FP16 range convert to ±inf; inf propagates
        through the product-sum (with ones it stays inf — with a zero in
        the dot product the hardware too would produce NaN)."""
        a = np.full((16, 16), 1e5, np.float32)   # > FP16 max
        ones = np.ones((16, 16), dtype=np.float32)
        with np.errstate(invalid="ignore"):
            out = mma(a, ones, np.zeros((16, 16), np.float32),
                      in_format="fp16")
            assert np.all(np.isinf(out))
            # identity B mixes inf * 0 -> NaN, matching IEEE hardware
            out_eye = mma(a, np.eye(16, dtype=np.float32),
                          np.zeros((16, 16), np.float32), in_format="fp16")
        assert np.all(np.isnan(out_eye))

    def test_tf32_handles_fp16_overflow_range(self):
        a = np.full((16, 16), 1e5, np.float32)
        b = np.eye(16, dtype=np.float32)
        out = mma(a, b, np.zeros((16, 16), np.float32), in_format="tf32")
        np.testing.assert_allclose(out, 1e5, rtol=2 ** -11)


class TestTcProduct:
    def test_zero_accumulator(self):
        rng = np.random.default_rng(43)
        a, b, _ = _rand_tiles(rng)
        np.testing.assert_array_equal(
            tc_product(a, b, in_format="tf32"),
            mma(a, b, np.zeros((16, 16), np.float32), in_format="tf32"))

    def test_quantize_inputs_flag(self):
        rng = np.random.default_rng(47)
        a, b, _ = _rand_tiles(rng)
        aq = quantize(a, "tf32")
        bq = quantize(b, "tf32")
        np.testing.assert_array_equal(
            tc_product(a, b, in_format="tf32"),
            tc_product(aq, bq, in_format="tf32", quantize_inputs=False))


tile = arrays(np.float32, (16, 16),
              elements=st.floats(min_value=-100, max_value=100, width=32))


@given(tile, tile)
@settings(max_examples=50, deadline=None)
def test_mma_linearity_in_c(a, b):
    """D(A,B,C) - D(A,B,0) stays within one RZ rounding of C."""
    c = np.full((16, 16), 3.0, np.float32)
    d0 = mma(a, b, np.zeros((16, 16), np.float32), in_format="tf32")
    dc = mma(a, b, c, in_format="tf32")
    # adding C before a single rounding: |dc - (d0 + c)| bounded by ulp of dc
    exact = (quantize(a, "tf32").astype(np.float64)
             @ quantize(b, "tf32").astype(np.float64))
    np.testing.assert_allclose(dc, exact + 3.0, rtol=1e-6, atol=1e-3)
