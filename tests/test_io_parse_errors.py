"""Structured ParseError reporting for malformed PDBQT and AutoGrid files."""

import numpy as np
import pytest

from repro.docking.grids import GridMaps
from repro.io import ParseError, read_maps, read_pdbqt, write_maps, write_pdbqt
from repro.testcases import get_test_case


@pytest.fixture(scope="module")
def ligand():
    # 5kao has rotatable bonds, so the PDBQT has BRANCH/ENDBRANCH blocks
    return get_test_case("5kao").ligand


@pytest.fixture()
def pdbqt_lines(ligand, tmp_path):
    path = tmp_path / "lig.pdbqt"
    write_pdbqt(ligand, path)
    return path, path.read_text().splitlines()


def rewrite(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestParseErrorType:
    def test_is_a_value_error(self):
        # existing `except ValueError` call sites keep working
        assert issubclass(ParseError, ValueError)

    def test_message_pinpoints_location(self):
        err = ParseError("lig.pdbqt", "malformed ATOM", line=7,
                         text="ATOM garbage")
        assert str(err) == "lig.pdbqt:7: malformed ATOM (line: 'ATOM garbage')"
        assert err.line == 7
        assert err.path.name == "lig.pdbqt"
        assert err.reason == "malformed ATOM"

    def test_whole_file_error_has_no_line(self):
        err = ParseError("x.map", "no ATOM records found")
        assert str(err) == "x.map: no ATOM records found"
        assert err.line is None


class TestMalformedPdbqt:
    def test_bad_atom_coordinates(self, pdbqt_lines):
        path, lines = pdbqt_lines
        i = next(k for k, line in enumerate(lines)
                 if line.startswith("ATOM"))
        lines[i] = lines[i][:30] + "x" * 8 + lines[i][38:]
        with pytest.raises(ParseError) as exc:
            read_pdbqt(rewrite(path, lines))
        assert exc.value.line == i + 1
        assert "malformed ATOM" in exc.value.reason
        assert str(path) in str(exc.value)

    def test_atom_missing_charge(self, pdbqt_lines):
        path, lines = pdbqt_lines
        i = next(k for k, line in enumerate(lines)
                 if line.startswith("ATOM"))
        lines[i] = lines[i][:60]
        with pytest.raises(ParseError, match="missing partial charge"):
            read_pdbqt(rewrite(path, lines))

    def test_bad_branch_record(self, pdbqt_lines):
        path, lines = pdbqt_lines
        i = next(k for k, line in enumerate(lines)
                 if line.startswith("BRANCH"))
        lines[i] = "BRANCH 3"
        with pytest.raises(ParseError) as exc:
            read_pdbqt(rewrite(path, lines))
        assert exc.value.line == i + 1
        assert "malformed BRANCH" in exc.value.reason

    def test_endbranch_without_branch(self, pdbqt_lines):
        path, lines = pdbqt_lines
        lines = [line for line in lines if not line.startswith("BRANCH")]
        with pytest.raises(ParseError, match="ENDBRANCH without open"):
            read_pdbqt(rewrite(path, lines))

    def test_unbalanced_branch(self, pdbqt_lines):
        path, lines = pdbqt_lines
        lines = [line for line in lines if not line.startswith("ENDBRANCH")]
        with pytest.raises(ParseError, match="unbalanced BRANCH"):
            read_pdbqt(rewrite(path, lines))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.pdbqt"
        path.write_text("REMARK nothing here\n")
        with pytest.raises(ParseError, match="no ATOM records"):
            read_pdbqt(path)

    def test_non_contiguous_serials(self, pdbqt_lines):
        path, lines = pdbqt_lines
        i = next(k for k, line in enumerate(lines)
                 if line.startswith("ATOM"))
        lines[i] = lines[i][:6] + f"{999:>5d}" + lines[i][11:]
        with pytest.raises(ParseError, match="non-contiguous"):
            read_pdbqt(rewrite(path, lines))


@pytest.fixture()
def maps_dir(tmp_path):
    rng = np.random.default_rng(0)
    maps = GridMaps(origin=np.zeros(3), spacing=0.5, type_names=["C"],
                    affinity=rng.standard_normal((1, 3, 3, 3)),
                    elec=rng.standard_normal((3, 3, 3)),
                    desolv_v=rng.standard_normal((3, 3, 3)),
                    desolv_s=rng.standard_normal((3, 3, 3)))
    fld = write_maps(maps, tmp_path, stem="p")
    return tmp_path, fld


def edit_map(directory, name, fn):
    path = directory / name
    lines = path.read_text().splitlines()
    path.write_text("\n".join(fn(lines)) + "\n")


class TestMalformedAutogrid:
    def test_round_trip_is_clean(self, maps_dir):
        _, fld = maps_dir
        assert read_maps(fld).type_names == ["C"]

    def test_bad_header_value(self, maps_dir):
        directory, fld = maps_dir

        def corrupt(lines):
            lines[3] = "SPACING not-a-number"
            return lines

        edit_map(directory, "p.C.map", corrupt)
        with pytest.raises(ParseError) as exc:
            read_maps(fld)
        assert exc.value.line == 4
        assert "SPACING" in exc.value.reason

    def test_missing_header_fields(self, maps_dir):
        directory, fld = maps_dir
        edit_map(directory, "p.C.map",
                 lambda lines: ["REMARK pad" if line.startswith("CENTER")
                                else line for line in lines])
        with pytest.raises(ParseError, match="missing CENTER"):
            read_maps(fld)

    def test_truncated_body(self, maps_dir):
        directory, fld = maps_dir
        edit_map(directory, "p.e.map", lambda lines: lines[:-5])
        with pytest.raises(ParseError, match="truncated"):
            read_maps(fld)

    def test_bad_grid_value_pinpointed(self, maps_dir):
        directory, fld = maps_dir

        def corrupt(lines):
            lines[10] = "oops"
            return lines

        edit_map(directory, "p.C.map", corrupt)
        with pytest.raises(ParseError) as exc:
            read_maps(fld)
        assert exc.value.line == 11
        assert exc.value.text == "oops"
        assert "bad grid value" in exc.value.reason

    def test_index_without_types(self, maps_dir):
        directory, fld = maps_dir
        lines = [line for line in fld.read_text().splitlines()
                 if not line.startswith("# TYPES")]
        fld.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParseError, match="TYPES"):
            read_maps(fld)

    def test_index_with_wrong_file_count(self, maps_dir):
        directory, fld = maps_dir
        lines = [line for line in fld.read_text().splitlines()
                 if "file=p.e.map" not in line]
        fld.write_text("\n".join(lines) + "\n")
        with pytest.raises(ParseError, match="index lists"):
            read_maps(fld)

    def test_missing_referenced_map_file(self, maps_dir):
        directory, fld = maps_dir
        (directory / "p.d1.map").unlink()
        with pytest.raises(ParseError, match="not found"):
            read_maps(fld)
