"""Tests for the content-addressed grid/ligand cache."""

import multiprocessing as mp

import numpy as np
import pytest

from repro.io import read_maps, write_maps, write_pdbqt
from repro.serve import ContentCache, file_sha256, maps_digest
from repro.serve.cache import load_ligand, load_maps


class TestAccounting:
    def test_hit_miss_counters(self):
        c = ContentCache(1 << 20)
        build_calls = []

        def build():
            build_calls.append(1)
            return np.zeros(8)

        c.get_or_build("k", build)
        c.get_or_build("k", build)
        c.get_or_build("k", build)
        assert len(build_calls) == 1
        s = c.stats()
        assert (s["hits"], s["misses"]) == (2, 1)
        assert s["hit_rate"] == pytest.approx(2 / 3)

    def test_byte_capacity_enforced_with_lru_eviction(self):
        arr = np.zeros(128)          # sizeof = nbytes + 1024 = 2048
        c = ContentCache(3 * 2048)
        for key in "abc":
            c.get_or_build(key, lambda: arr.copy())
        assert len(c) == 3
        c.get_or_build("a", lambda: arr)        # refresh a's LRU slot
        c.get_or_build("d", lambda: arr.copy())  # evicts b (oldest)
        assert c.stats()["evictions"] == 1
        assert c.bytes_used <= c.capacity_bytes
        c.get_or_build("b", lambda: arr.copy())  # miss: b was evicted
        c.get_or_build("a", lambda: arr.copy())  # hit: a survived
        s = c.stats()
        assert s["misses"] == 5 and s["hits"] == 2

    def test_oversize_values_returned_but_not_cached(self):
        c = ContentCache(1024)
        big = np.zeros(1024)         # 8 KiB + overhead > capacity
        out = c.get_or_build("big", lambda: big)
        assert out is big
        assert len(c) == 0
        assert c.stats()["oversize"] == 1

    def test_racing_builders_converge_on_one_object(self):
        """Regression: when two threads missed the same key concurrently,
        the loser's freshly-built object replaced (or bypassed) the
        winner's cached one, so callers of one key could hold different
        instances — breaking the bit-identical-grids invariant."""
        import threading
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        c = ContentCache(1 << 20)
        built = []
        build_lock = threading.Lock()

        def build():
            # every builder returns a distinct object; only one of them
            # may ever be visible to callers
            obj = np.zeros(16)
            with build_lock:
                built.append(obj)
            return obj

        results = [None] * n_threads

        def worker(i):
            barrier.wait()   # maximise the miss/miss overlap
            results[i] = c.get_or_build("k", build)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        first = results[0]
        assert all(r is first for r in results)       # one object per key
        assert first is c.get_or_build("k", build)    # and it is cached
        s = c.stats()
        assert s["hits"] + s["misses"] == n_threads + 1
        # every losing builder is counted as a race; builds that never
        # raced were hits and built nothing
        assert s["races"] == len(built) - 1
        assert s["races"] == s["misses"] - 1
        assert len(c) == 1

    def test_delta_between_snapshots(self):
        c = ContentCache(1 << 20)
        c.get_or_build("a", lambda: np.zeros(4))
        before = c.stats()
        c.get_or_build("a", lambda: np.zeros(4))
        c.get_or_build("b", lambda: np.zeros(4))
        d = ContentCache.delta(before, c.stats())
        assert (d["hits"], d["misses"]) == (1, 1)
        assert d["hit_rate"] == pytest.approx(0.5)


class TestContentAddressing:
    def test_renamed_file_still_hits(self, case_small, tmp_path):
        a = tmp_path / "a.pdbqt"
        b = tmp_path / "same-bytes-other-name.pdbqt"
        write_pdbqt(case_small.ligand, a)
        b.write_bytes(a.read_bytes())
        c = ContentCache(1 << 24)
        load_ligand(a, c)
        load_ligand(b, c)
        assert c.stats()["hits"] == 1

    def test_changed_grid_value_changes_digest(self, case_small, tmp_path):
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        before = maps_digest(fld)
        emap = tmp_path / "r.e.map"
        lines = emap.read_text().splitlines()
        lines[6] = "999.999"                     # first data value
        emap.write_text("\n".join(lines) + "\n")
        assert maps_digest(fld) != before

    def test_digest_stable_across_processes(self, case_small, tmp_path):
        """Content hashes must agree between parent and spawned workers —
        otherwise dedup/resume break across process boundaries."""
        path = tmp_path / "l.pdbqt"
        write_pdbqt(case_small.ligand, path)
        local = file_sha256(path)
        ctx = mp.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = pool.apply(file_sha256, (str(path),))
        assert remote == local

    def test_job_id_stable_across_processes(self):
        from repro.serve import DockingJob
        job = DockingJob(spec={"kind": "case", "case": "1u4d"}, n_runs=2)
        ctx = mp.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = pool.apply(_job_id_of, (job,))
        assert remote == job.job_id


def _job_id_of(job):
    return job.job_id


class TestCachedMapsFidelity:
    def test_cached_maps_bit_identical_to_fresh(self, case_small, tmp_path):
        """Property: serving a grid from cache must be invisible — every
        array bit-identical to a freshly parsed copy."""
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        cache = ContentCache(1 << 26)
        load_maps(fld, cache)                    # miss: populates
        cached = load_maps(fld, cache)           # hit: served from cache
        fresh = read_maps(fld)
        assert cache.stats()["hits"] == 1
        for attr in ("affinity", "elec", "desolv_v", "desolv_s"):
            np.testing.assert_array_equal(getattr(cached, attr),
                                          getattr(fresh, attr))
        np.testing.assert_array_equal(cached.origin, fresh.origin)
        assert cached.spacing == fresh.spacing
        assert cached.type_names == fresh.type_names

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_scores_identical_to_fresh(self, case_small, tmp_path,
                                              seed):
        """Scoring through cached maps is bit-identical to fresh maps,
        across random pose batches."""
        from repro.docking.scoring import ScoringFunction
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        cache = ContentCache(1 << 26)
        load_maps(fld, cache)
        cached = load_maps(fld, cache)
        fresh = read_maps(fld)
        rng = np.random.default_rng(seed)
        glen = 6 + case_small.ligand.n_rot
        genes = rng.normal(0, 1.0, size=(16, glen))
        s_cached = ScoringFunction(case_small.ligand, cached).score(genes)
        s_fresh = ScoringFunction(case_small.ligand, fresh).score(genes)
        np.testing.assert_array_equal(s_cached, s_fresh)


class TestHashingRobustness:
    def test_file_sha256_streams_in_chunks(self, tmp_path):
        """The digest must match a whole-file hash while reading in
        bounded chunks (multi-chunk files exercise the loop)."""
        import hashlib

        from repro.serve import cache as cache_mod
        payload = bytes(range(256)) * 40_000        # ~10 MB, > HASH_CHUNK
        path = tmp_path / "blob.bin"
        path.write_bytes(payload)
        assert file_sha256(path) == hashlib.sha256(payload).hexdigest()
        assert len(payload) > cache_mod.HASH_CHUNK  # loop actually ran

    def test_file_sha256_concatenates_multiple_files(self, tmp_path):
        import hashlib
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"first")
        b.write_bytes(b"second")
        assert file_sha256(a, b) == \
            hashlib.sha256(b"firstsecond").hexdigest()

    def test_maps_digest_missing_map_raises_parse_error(self, case_small,
                                                        tmp_path):
        """A .fld referencing a deleted .map must raise a structured
        ParseError naming the index and the missing file, not a bare
        FileNotFoundError from deep inside the hasher."""
        from repro.io.errors import ParseError
        fld = write_maps(case_small.maps, tmp_path, stem="r")
        victim = next(tmp_path.glob("r.*.map"))
        victim.unlink()
        with pytest.raises(ParseError) as exc:
            maps_digest(fld)
        assert exc.value.path == fld
        assert victim.name in str(exc.value)
