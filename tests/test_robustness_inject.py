"""Tests for repro.robustness.inject: deterministic fault injection and the
end-to-end recovery demonstration."""

import numpy as np
import pytest

from repro.reduction.api import SimtReduction, TcFp16Reduction
from repro.robustness import FaultLedger, GuardedReduction
from repro.robustness.inject import (
    OVERFLOW_VALUE,
    FaultInjector,
    InjectingReduction,
    build_injected_backend,
    corrupt_grid_maps,
)
from repro.tensorcore.mma import MMA_K, MMA_M, MMA_N, fault_hook, mma


def blocks(n_blocks=12, n=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_blocks, n, 4)).astype(np.float32)


def out4(n_blocks, seed=0):
    """A reduce4 *output* — one (4,) lane group per block."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n_blocks, 4)).astype(np.float32)


class TestFaultInjector:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(-0.1)
        with pytest.raises(ValueError, match="rate"):
            FaultInjector(1.5)
        with pytest.raises(ValueError, match="mode"):
            FaultInjector(0.1, mode="gamma-ray")
        with pytest.raises(ValueError, match="lanes"):
            FaultInjector(0.1, lanes="two")

    def test_zero_rate_never_injects(self):
        inj = FaultInjector(0.0)
        out, mask = inj.corrupt_blocks(out4(12))
        assert not mask.any() and inj.n_injected == 0
        assert inj.n_seen == 12

    def test_stride_is_exact(self):
        # rate 0.25 -> period 4 -> every 4th block: indices 3, 7, 11
        inj = FaultInjector(0.25, mode="nan")
        _, mask = inj.corrupt_blocks(out4(12))
        assert np.flatnonzero(mask).tolist() == [3, 7, 11]
        assert inj.n_injected == 3

    def test_stride_spans_batches(self):
        # the schedule is global: chunking the stream must not change it
        inj = FaultInjector(0.2, mode="nan")
        hits = []
        offset = 0
        for size in (3, 7, 1, 9, 5):
            _, mask = inj.corrupt_blocks(out4(size, seed=size))
            hits += (np.flatnonzero(mask) + offset).tolist()
            offset += size
        assert hits == [4, 9, 14, 19, 24]
        assert inj.n_injected == 5 and inj.n_seen == 25

    def test_reset_replays_identical_faults(self):
        v = out4(12)
        inj = FaultInjector(0.5, mode="bitflip", seed=3)
        a, mask_a = inj.corrupt_blocks(v)
        inj.reset()
        b, mask_b = inj.corrupt_blocks(v)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(mask_a, mask_b)

    def test_modes(self):
        v = out4(12)
        for mode, check in [
                ("nan", lambda x: np.isnan(x).any()),
                ("inf", lambda x: np.isinf(x).any()),
                ("overflow", lambda x: (x == np.float32(OVERFLOW_VALUE)).any()),
        ]:
            out, mask = FaultInjector(1.0, mode=mode).corrupt_blocks(v)
            assert mask.all()
            assert all(check(out[i]) for i in range(len(out))), mode

    def test_overflow_value_is_silent_poison(self):
        # finite (passes isfinite), past FP16 range (caught by the guard's
        # overflow check), negative (wins best-energy comparisons)
        assert np.isfinite(OVERFLOW_VALUE)
        assert abs(OVERFLOW_VALUE) > 65504.0
        assert OVERFLOW_VALUE < 0

    def test_bitflip_changes_exactly_one_block(self):
        v = out4(4)
        out, mask = FaultInjector(0.25, mode="bitflip",
                                  seed=1).corrupt_blocks(v)
        assert np.flatnonzero(mask).tolist() == [3]
        diff = np.any(out != v, axis=-1)
        assert np.flatnonzero(diff).tolist() == [3]

    def test_lanes_all_corrupts_whole_block(self):
        v = out4(4)
        out, mask = FaultInjector(0.25, mode="nan",
                                  lanes="all").corrupt_blocks(v)
        assert np.isnan(out[3]).all()
        assert not np.isnan(out[:3]).any()


class TestTileInjection:
    def test_corrupt_tiles_stride(self):
        tiles = np.zeros((10, 16, 16), dtype=np.float32)
        inj = FaultInjector(0.2, mode="nan")
        out = inj.corrupt_tiles(tiles)
        bad = [i for i in range(10) if np.isnan(out[i]).any()]
        assert bad == [4, 9]
        assert inj.n_injected == 2

    def test_mma_fault_hook_round_trip(self):
        a = np.ones((MMA_M, MMA_K), dtype=np.float32)
        b = np.ones((MMA_K, MMA_N), dtype=np.float32)
        c = np.zeros((MMA_M, MMA_N), dtype=np.float32)
        clean = mma(a, b, c)
        inj = FaultInjector(1.0, mode="nan", seed=0)
        with fault_hook(inj.tile_hook(element=(0, 0))):
            hit = mma(a, b, c)
        assert np.isnan(hit[0, 0]) and inj.n_injected == 1
        # hook restored on exit: next issue is clean again
        np.testing.assert_array_equal(mma(a, b, c), clean)

    def test_tile_hook_site_filter(self):
        a = np.ones((MMA_M, MMA_K), dtype=np.float32)
        b = np.ones((MMA_K, MMA_N), dtype=np.float32)
        c = np.zeros((MMA_M, MMA_N), dtype=np.float32)
        inj = FaultInjector(1.0, mode="nan")
        with fault_hook(inj.tile_hook(sites=("tcec-simt-acc",))):
            out = mma(a, b, c)  # site "mma-accumulator": filtered out
        assert np.isfinite(out).all() and inj.n_injected == 0


class TestInjectingReduction:
    def test_records_ground_truth_mask(self):
        inj = FaultInjector(0.25, mode="nan")
        backend = InjectingReduction(SimtReduction(), inj)
        out = backend.reduce4(blocks(8))
        assert backend.last_injected_mask.tolist() == [
            False, False, False, True, False, False, False, True]
        assert np.isnan(out[3]).any() and np.isnan(out[7]).any()

    def test_proxies_accumulator_format(self):
        backend = InjectingReduction(TcFp16Reduction(), FaultInjector(0.0))
        assert backend.accumulator_format == "fp16"
        # so the guard's overflow auto-detection sees through the wrapper
        assert GuardedReduction(backend).check_overflow
        assert not hasattr(
            InjectingReduction(SimtReduction(), FaultInjector(0.0)),
            "accumulator_format")

    def test_guard_attributes_injections_exactly(self):
        led = FaultLedger()
        guard, inj = build_injected_backend(
            base="baseline", policy="degrade", rate=0.25, mode="nan",
            ledger=led)
        guard.reduce4(blocks(20))
        assert inj.n_injected == 5
        assert led.by_site == {"injected": 5}
        assert led.blocks_recovered == 5


class TestCorruptGridMaps:
    def test_injects_nan_cells_into_copy(self):
        from repro.testcases import get_test_case
        maps = get_test_case("1u4d").maps
        inj = FaultInjector(1e-2, mode="nan")
        bad = corrupt_grid_maps(maps, inj)
        n_cells = maps.affinity.size
        assert inj.n_injected == n_cells // inj.period
        assert int(np.isnan(bad.affinity).sum()) == inj.n_injected
        assert not np.isnan(maps.affinity).any()  # original untouched

    def test_grid_faults_are_unrecoverable(self):
        # NaN inputs defeat any reduction order: the degrade fallback
        # re-reduces and still sees NaN -> the unrecoverable ledger path
        v = blocks(4)
        v[1, 0, 2] = np.nan
        guard = GuardedReduction(SimtReduction(), policy="degrade")
        guard.reduce4(v)
        assert guard.ledger.blocks_unrecoverable == 1


class TestEndToEndRecovery:
    """The acceptance demonstration: faults injected into tc-fp16 at rate
    1e-3; ``degrade`` restores best-score parity with the FP32 baseline
    while ``ignore`` measurably degrades it, with exact fault accounting.

    Uses the deterministic ADADELTA refinement path (the hot loop the
    paper's Figure 1 degradation flows through) so the comparison is free
    of genetic-algorithm sampling noise.
    """

    CASE, BATCH, ITERS, RATE = "7cpa", 64, 80, 1e-3

    @pytest.fixture(scope="class")
    def study(self):
        from repro.docking.genotype import random_genotypes
        from repro.docking.gradients import GradientCalculator
        from repro.search.adadelta import AdadeltaConfig, AdadeltaLocalSearch
        from repro.testcases import get_test_case

        sf = get_test_case(self.CASE).scoring()
        rng = np.random.default_rng(0)
        genes = random_genotypes(rng, self.BATCH, sf.ligand,
                                 sf.maps.box_lo, sf.maps.box_hi)

        def refine(backend):
            ls = AdadeltaLocalSearch(
                GradientCalculator(sf, backend),
                AdadeltaConfig(max_iters=self.ITERS))
            best_x, _, _ = ls.minimize(genes)
            true = sf.score(best_x)  # re-score exactly: no reporting bias
            return {"best": float(true.min()), "mean": float(true.mean())}

        out = {"baseline": refine("baseline")}
        for policy in ("ignore", "degrade"):
            backend, injector = build_injected_backend(
                base="tc-fp16", policy=policy, rate=self.RATE,
                mode="overflow", seed=0, lanes="all")
            out[policy] = refine(backend)
            out[policy]["injected"] = injector.n_injected
            out[policy]["ledger"] = backend.ledger
        return out

    def test_ledger_reports_exact_injected_count(self, study):
        for policy in ("ignore", "degrade"):
            led = study[policy]["ledger"]
            injected = study[policy]["injected"]
            # stride-deterministic: one fault per 1/rate blocks seen
            assert injected == led.blocks_checked * self.RATE // 1
            assert led.by_site["injected"] == injected
            assert injected > 0

    def test_degrade_restores_baseline_parity(self, study):
        drift = abs(study["degrade"]["best"] - study["baseline"]["best"])
        assert drift < 0.25, study

    def test_ignore_measurably_degrades(self, study):
        loss = study["ignore"]["best"] - study["baseline"]["best"]
        assert loss > 0.5, study
        # ensemble-wide, silent corruption is catastrophic: poisoned
        # energies lock the best-pose bookkeeping onto garbage poses
        assert study["ignore"]["mean"] > study["baseline"]["mean"] + 100.0

    def test_degrade_repairs_every_injected_fault(self, study):
        led = study["degrade"]["ledger"]
        assert led.blocks_recovered == led.blocks_faulty
        assert led.blocks_unrecoverable == 0


class TestEngineIntegration:
    def test_config_validation(self):
        from repro.core import DockingConfig
        with pytest.raises(ValueError, match="fault policy"):
            DockingConfig(fault_policy="panic")
        with pytest.raises(ValueError, match="inject_rate"):
            DockingConfig(fault_policy="degrade", inject_rate=2.0)
        with pytest.raises(ValueError, match="fault_policy"):
            DockingConfig(inject_rate=0.1)  # injection needs a guard

    def test_engine_reports_fault_stats(self):
        from repro.core import DockingConfig, DockingEngine
        from repro.search.lga import LGAConfig
        from repro.testcases import get_test_case
        cfg = DockingConfig(
            backend="tc-fp16", fault_policy="degrade", inject_rate=0.01,
            inject_mode="nan",
            lga=LGAConfig(pop_size=8, max_evals=400, max_gens=8,
                          ls_iters=4, ls_rate=0.25))
        result = DockingEngine(get_test_case("1u4d"), cfg).dock(
            n_runs=2, seed=1)
        fs = result.fault_stats
        assert fs is not None
        assert fs["blocks_checked"] > 0
        assert fs["by_site"].get("injected", 0) > 0
        assert fs["blocks_recovered"] > 0
        assert np.isfinite(result.best_score)

    def test_unguarded_run_has_no_fault_stats(self):
        from repro.core import DockingConfig, DockingEngine
        from repro.search.lga import LGAConfig
        from repro.testcases import get_test_case
        cfg = DockingConfig(
            lga=LGAConfig(pop_size=8, max_evals=200, max_gens=4,
                          ls_iters=4, ls_rate=0.25))
        result = DockingEngine(get_test_case("1u4d"), cfg).dock(
            n_runs=1, seed=1)
        assert result.fault_stats is None

    def test_us_per_eval_nan_on_zero_evals(self):
        import math
        from repro.core.engine import DockingResult
        r = DockingResult(case_name="x", config=None, runs=[], outcomes=[],
                          total_evals=0, generations=0, runtime_seconds=0.0)
        assert math.isnan(r.us_per_eval)
