"""Tests for the service job queue: priority, dedup, backpressure."""

import numpy as np
import pytest

from repro.core.config import DockingConfig
from repro.search.lga import LGAConfig
from repro.serve import DockingJob, JobQueue, QueueFull, seed_from_spec, spawn_seed


def _job(case="1u4d", priority=0, seed=0, deadline=None, label=""):
    return DockingJob(spec={"kind": "case", "case": case},
                      n_runs=2, seed=seed, priority=priority,
                      deadline=deadline, label=label or case)


class TestJobIdentity:
    def test_job_id_is_content_hash(self):
        a, b = _job("1u4d"), _job("1u4d")
        assert a.job_id == b.job_id
        assert len(a.job_id) == 64  # sha256 hex

    def test_job_id_changes_with_content(self):
        base = _job("1u4d")
        assert _job("1xoz").job_id != base.job_id
        assert _job("1u4d", seed=1).job_id != base.job_id
        other_cfg = DockingJob(spec=base.spec, n_runs=2,
                               config=DockingConfig(backend="baseline"))
        assert other_cfg.job_id != base.job_id

    def test_label_and_priority_not_part_of_hash(self):
        assert _job(label="x").job_id == _job(label="y").job_id
        assert _job(priority=5).job_id == _job(priority=0).job_id

    def test_round_trip(self):
        job = DockingJob(spec={"kind": "case", "case": "7cpa"},
                         config=DockingConfig(backend="baseline",
                                              lga=LGAConfig(pop_size=8)),
                         n_runs=3, seed=spawn_seed(9, 2), priority=-1,
                         label="x")
        back = DockingJob.from_dict(job.to_dict())
        assert back == job
        assert back.job_id == job.job_id


class TestSeedSpecs:
    def test_spawn_seed_materialises_spawned_sequence(self):
        seq = seed_from_spec(spawn_seed(7, 3))
        assert isinstance(seq, np.random.SeedSequence)
        assert seq.entropy == 7
        assert seq.spawn_key == (3,)

    def test_plain_int_passes_through(self):
        assert seed_from_spec(42) == 42

    def test_sibling_jobs_never_share_streams(self):
        """The entropy-spawn contract: spawned job streams are disjoint
        from each other and from any plain-int user seed."""
        a = seed_from_spec(spawn_seed(0, 0))
        b = seed_from_spec(spawn_seed(0, 1))
        user = np.random.SeedSequence(1)   # a plain-int experiment seed
        states = [tuple(s.generate_state(4)) for s in (a, b, user)]
        assert len(set(states)) == 3


class TestJobQueue:
    def test_priority_order_then_fifo(self):
        q = JobQueue()
        q.submit(_job("1u4d", priority=5))
        q.submit(_job("1xoz", priority=-1))
        q.submit(_job("1yv3", priority=0))
        q.submit(_job("1owe", priority=0))
        order = [j.label for j in q.drain()]
        assert order == ["1xoz", "1yv3", "1owe", "1u4d"]

    def test_dedup_by_content_hash(self):
        q = JobQueue()
        first = q.submit(_job("1u4d"))
        again = q.submit(_job("1u4d", priority=3, label="renamed"))
        assert first == again
        assert len(q) == 1
        assert q.stats()["deduped"] == 1

    def test_dedup_persists_after_pop(self):
        q = JobQueue()
        q.submit(_job("1u4d"))
        assert q.pop() is not None
        q.submit(_job("1u4d"))
        assert len(q) == 0          # already processed: not re-enqueued
        assert q.stats()["deduped"] == 1

    def test_queue_full_rejects_with_structure(self):
        q = JobQueue(maxsize=2)
        q.submit(_job("1u4d"))
        q.submit(_job("1xoz"))
        with pytest.raises(QueueFull) as exc:
            q.submit(_job("1yv3"))
        assert exc.value.capacity == 2
        assert exc.value.pending == 2

    def test_blocking_submit_times_out(self):
        q = JobQueue(maxsize=1)
        q.submit(_job("1u4d"))
        with pytest.raises(QueueFull):
            q.submit(_job("1xoz"), block=True, timeout=0.05)

    def test_blocking_submit_proceeds_after_pop(self):
        import threading
        q = JobQueue(maxsize=1)
        q.submit(_job("1u4d"))
        popper = threading.Timer(0.05, q.pop)
        popper.start()
        q.submit(_job("1xoz"), block=True, timeout=2.0)
        popper.join()
        assert q.stats()["submitted"] == 2

    def test_expired_jobs_skipped_at_pop(self):
        t = {"now": 0.0}
        q = JobQueue(clock=lambda: t["now"])
        q.submit(_job("1u4d", deadline=10.0))
        q.submit(_job("1xoz"))              # no deadline
        t["now"] = 11.0
        popped = q.drain()
        assert [j.label for j in popped] == ["1xoz"]
        assert [j.label for j in q.expired] == ["1u4d"]
        assert q.stats()["expired"] == 1

    def test_expired_job_resubmission_accepted(self):
        """Regression: an expired job stayed in the dedup set forever, so
        resubmitting the same work (same content hash, fresh deadline)
        was silently swallowed and never ran."""
        t = {"now": 0.0}
        q = JobQueue(clock=lambda: t["now"])
        first_id = q.submit(_job("1u4d", deadline=10.0))
        t["now"] = 11.0
        assert q.drain() == []              # expired, never ran
        # identical work resubmitted with a new deadline: the content
        # hash ignores deadlines, so the id is the same — and it must
        # be enqueued again, not deduped against the expired attempt
        again_id = q.submit(_job("1u4d", deadline=20.0))
        assert again_id == first_id
        assert len(q) == 1
        assert q.stats()["deduped"] == 0
        popped = q.drain()
        assert [j.job_id for j in popped] == [first_id]
        # once actually popped, dedup applies as usual
        q.submit(_job("1u4d", deadline=30.0))
        assert len(q) == 0
        assert q.stats()["deduped"] == 1

    def test_expired_record_bounded(self):
        """The expired record must not grow without bound on a long-lived
        service; the full count survives in expired_total / stats()."""
        t = {"now": 0.0}
        q = JobQueue(clock=lambda: t["now"], expired_keep=3)
        cases = ["1u4d", "1xoz", "1yv3", "1owe", "7cpa"]
        for name in cases:
            q.submit(_job(name, deadline=1.0))
        t["now"] = 2.0
        assert q.drain() == []
        assert len(q.expired) == 3          # bounded, most recent kept
        assert [j.label for j in q.expired] == cases[-3:]
        assert q.expired_total == 5
        assert q.stats()["expired"] == 5
        with pytest.raises(ValueError):
            JobQueue(expired_keep=0)
